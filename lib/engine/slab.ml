(* Multi-word slab simulator: K consecutive 62-lane words per signal in
   one flat int array.

   {!Compiled_wide} is bounded at 62 lanes because each signal is one
   tagged int; here signal [i] owns words [i*k .. i*k + k - 1] of the
   slab, and every kernel loop runs its gate over the whole K-word run
   before moving on — 62*K lanes per settle pass, with the per-gate
   dst/src index loads (the bottleneck of the wide engine) amortized K
   ways and the K value words streaming from consecutive addresses.  The
   compile pipeline is {!Kernel}, shared with {!Compiled_wide}; the only
   compile-time addition is pre-scaling every index array by [k] so the
   hot loops never multiply.

   Inner loops come in three flavors picked at [settle] time: an exact
   copy of the wide engine's 1-word loops for [k = 1], a 4-way unrolled
   walk when [4 | k] (the intended operating points k = 4/8/16), and a
   generic [for w] loop otherwise.

   Activity gating ([~gating:true]) adds per-rank dirty bits over
   {!Kernel.consumer_ranks}:

   - every mutation (input writes, pokes, the dff latch phase) compares
     the new word against the old and, on any difference, marks the
     ranks that read the component;
   - [settle] skips ranks whose bit is clear and, inside a running rank,
     change-detects each gate's K-word result to mark *its* readers —
     consumers always sit at strictly higher ranks, so one ascending
     sweep propagates exactly the active cone;
   - a settled engine leaves every bit clear, so repeated settles and
     quiescent cycles (idle CPU, held sorter inputs) cost a bool scan.

   Change detection costs an extra load and xor per word plus a
   consumer-marking pass per changed gate — nearly 2x on a circuit
   whose every rank toggles every cycle.  Gating is therefore
   adaptive per rank: a rank whose gates changed on [hot_after]
   consecutive detected runs flips to a {e hot} mode that runs the
   plain ungated kernels and conservatively marks the union of its
   consumer ranks, re-probing with detection every [probe_period]
   runs.  A hot rank that stops being marked dirty simply stops
   running, so quiescence still propagates instantly; the probe only
   exists to catch ranks whose inputs keep toggling while their
   outputs have stabilized.  High-toggle circuits thus pay only the
   dirty-bit scan and the rare probe (a few percent), while idle
   workloads keep the full skip.

   Gating is rejected together with {!set_forces}: forces mutate values
   outside the change-detected paths (and clearing one must un-force
   ranks that gating would then skip), so campaigns run ungated. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module Packed = Hydra_core.Packed

let lanes_per_word = Packed.lanes
let lane_mask = Packed.lane_mask

type force = {
  f_site : int;
  force0 : int array;
  force1 : int array;
  flip : int array;
}

type t = {
  prog : Kernel.program;
  k : int;
  gating : bool;
  kernels_s : Kernel.kernel array;
      (* [prog.kernels] with every index pre-scaled by [k] *)
  consts_s : (int * int) array;  (* scaled base index, broadcast word *)
  dffs_s : int array;  (* scaled dff bases *)
  dff_src_s : int array;  (* scaled driver bases *)
  dff_init_w : int array;  (* broadcast power-up words *)
  consumers : int array array;
      (* per (unscaled) component: ranks whose kernels read it *)
  rank_consumers : int array array;
      (* per rank: union of its gates' consumer ranks (hot-mode marking) *)
  values : int array;  (* the slab: size * k + pad *)
  dff_next : int array;  (* ndffs * k + pad *)
  rank_dirty : bool array;  (* one bit per rank; only read when gating *)
  rank_mode : int array;
      (* 0 = detecting; n > 0 = hot for n more runs before a probe *)
  rank_streak : int array;
      (* consecutive changed runs while detecting; at [hot_after], go hot *)
  mutable cycle : int;
  mutable force_slots : force array array;
}

(* Adaptive-gating thresholds: a rank goes hot after this many
   consecutive changed runs... *)
let hot_after = 4

(* ...and stays hot for this many runs before one detecting probe.  The
   probe costs ~2x for that single run (and going hot again takes
   [hot_after] more probes), so the steady-state overhead of a
   permanently-toggling rank is [hot_after / (probe_period + hot_after)]
   of that — about 3%.  The price is recovery latency: a rank whose
   inputs keep toggling while its outputs have stabilized is only
   noticed at the next probe. *)
let probe_period = 128

let k t = t.k
let words t = t.k
let lanes t = lanes_per_word * t.k
let gated t = t.gating

let scale_kernel c (kn : Kernel.kernel) : Kernel.kernel =
  let s = Array.map (fun i -> i * c) in
  {
    inv_dst = s kn.inv_dst;
    inv_src = s kn.inv_src;
    and_dst = s kn.and_dst;
    and_s0 = s kn.and_s0;
    and_s1 = s kn.and_s1;
    or_dst = s kn.or_dst;
    or_s0 = s kn.or_s0;
    or_s1 = s kn.or_s1;
    xor_dst = s kn.xor_dst;
    xor_s0 = s kn.xor_s0;
    xor_s1 = s kn.xor_s1;
    andor_dst = s kn.andor_dst;
    andor_a = s kn.andor_a;
    andor_b = s kn.andor_b;
    andor_c = s kn.andor_c;
    andor_d = s kn.andor_d;
    orand_dst = s kn.orand_dst;
    orand_a = s kn.orand_a;
    orand_b = s kn.orand_b;
    orand_c = s kn.orand_c;
    xor3_dst = s kn.xor3_dst;
    xor3_a = s kn.xor3_a;
    xor3_b = s kn.xor3_b;
    xor3_c = s kn.xor3_c;
    out_dst = s kn.out_dst;
    out_src = s kn.out_src;
  }

let apply_initial t =
  let values = t.values and km1 = t.k - 1 in
  Array.iter
    (fun (base, w) ->
      for x = base to base + km1 do
        Array.unsafe_set values x w
      done)
    t.consts_s;
  Array.iteri
    (fun j base ->
      let w = t.dff_init_w.(j) in
      for x = base to base + km1 do
        Array.unsafe_set values x w
      done)
    t.dffs_s

(* Cache-line slack so replicas allocated back to back never share a
   line across domains (cf. {!Compiled_wide}). *)
let pad = 8

(* Per rank, the sorted union of its gates' consumer ranks: what a hot
   rank marks after an undetected run. *)
let rank_consumer_union (prog : Kernel.program) consumers =
  let nranks = Array.length prog.Kernel.kernels in
  Array.map
    (fun (kn : Kernel.kernel) ->
      let seen = Array.make nranks false in
      let add comp = Array.iter (fun r -> seen.(r) <- true) consumers.(comp) in
      Array.iter add kn.inv_dst;
      Array.iter add kn.and_dst;
      Array.iter add kn.or_dst;
      Array.iter add kn.xor_dst;
      Array.iter add kn.andor_dst;
      Array.iter add kn.orand_dst;
      Array.iter add kn.xor3_dst;
      let out = ref [] in
      for r = nranks - 1 downto 0 do
        if seen.(r) then out := r :: !out
      done;
      Array.of_list !out)
    prog.Kernel.kernels

let create ?(k = 8) ?(gating = false) ?(optimize = false) ?(relayout = true)
    ?(fuse = true) ?(certify = false) netlist =
  if k < 1 then invalid_arg "Slab.create: k must be >= 1";
  let prog = Kernel.compile ~optimize ~relayout ~fuse ~certify netlist in
  let consumers = Kernel.consumer_ranks prog in
  let nranks = Array.length prog.Kernel.kernels in
  let t =
    {
      prog;
      k;
      gating;
      kernels_s = Array.map (scale_kernel k) prog.Kernel.kernels;
      consts_s =
        Array.map (fun (i, b) -> (i * k, Packed.broadcast b)) prog.Kernel.consts;
      dffs_s = Array.map (fun i -> i * k) prog.Kernel.dffs;
      dff_src_s = Array.map (fun i -> i * k) prog.Kernel.dff_src;
      dff_init_w = Array.map Packed.broadcast prog.Kernel.dff_init;
      consumers;
      rank_consumers = rank_consumer_union prog consumers;
      values = Array.make ((Kernel.size prog * k) + pad) 0;
      dff_next = Array.make ((Array.length prog.Kernel.dffs * k) + pad) 0;
      rank_dirty = Array.make nranks true;
      rank_mode = Array.make nranks 0;
      rank_streak = Array.make nranks 0;
      cycle = 0;
      force_slots = [||];
    }
  in
  apply_initial t;
  t

let replicate t =
  let r =
    {
      t with
      values = Array.make (Array.length t.values) 0;
      dff_next = Array.make (Array.length t.dff_next) 0;
      rank_dirty = Array.make (Array.length t.rank_dirty) true;
      rank_mode = Array.make (Array.length t.rank_mode) 0;
      rank_streak = Array.make (Array.length t.rank_streak) 0;
      cycle = 0;
      force_slots = [||];
    }
  in
  apply_initial r;
  r

(* Note the hot/detect adaptation state deliberately survives [reset]:
   it is a performance cache over the workload's toggle pattern, cannot
   affect simulated values (hot is conservative), and a reset-step loop
   re-running the same stimulus is exactly where staying hot pays. *)
let reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  apply_initial t;
  Array.fill t.rank_dirty 0 (Array.length t.rank_dirty) true;
  t.cycle <- 0

let mark_ranks dirty ranks =
  for x = 0 to Array.length ranks - 1 do
    Array.unsafe_set dirty (Array.unsafe_get ranks x) true
  done

let check_word what t w =
  if w < 0 || w >= t.k then
    invalid_arg
      (Printf.sprintf "%s: word index %d out of range (engine has %d words)"
         what w t.k)

(* Every mutation funnels through here: masked write + (when gating)
   change detection and consumer marking. *)
let write_word t comp w v =
  let v = v land lane_mask in
  let idx = (comp * t.k) + w in
  if t.gating then begin
    if t.values.(idx) <> v then begin
      t.values.(idx) <- v;
      mark_ranks t.rank_dirty t.consumers.(comp)
    end
  end
  else t.values.(idx) <- v

let input_comp what t name =
  match Hashtbl.find_opt t.prog.Kernel.input_index name with
  | Some i -> i
  | None -> invalid_arg (what ^ ": unknown input " ^ name)

let set_input_word t name w v =
  check_word "Slab.set_input_word" t w;
  write_word t (input_comp "Slab.set_input_word" t name) w v

let set_input t name v = write_word t (input_comp "Slab.set_input" t name) 0 v

let set_input_bool t name b =
  let comp = input_comp "Slab.set_input_bool" t name in
  let w = Packed.broadcast b in
  for j = 0 to t.k - 1 do
    write_word t comp j w
  done

let set_input_lane t name lane b =
  if lane < 0 || lane >= lanes t then
    invalid_arg
      (Printf.sprintf "Slab.set_input_lane: lane %d out of range (engine has %d lanes)"
         lane (lanes t));
  let comp = input_comp "Slab.set_input_lane" t name in
  let w = lane / lanes_per_word and bit = lane mod lanes_per_word in
  write_word t comp w (Packed.set_lane t.values.((comp * t.k) + w) bit b)

let peek_word t i w =
  check_word "Slab.peek_word" t w;
  t.values.((i * t.k) + w)

let peek t i = t.values.(i * t.k)

let poke_word t i w v =
  check_word "Slab.poke_word" t w;
  write_word t i w v

let poke t i v = write_word t i 0 v

let output_comp what t name =
  match Hashtbl.find_opt t.prog.Kernel.output_index name with
  | Some i -> i
  | None -> invalid_arg (what ^ ": unknown output " ^ name)

let output_word t name w =
  check_word "Slab.output_word" t w;
  t.values.((output_comp "Slab.output_word" t name * t.k) + w)

let output t name = t.values.(output_comp "Slab.output" t name * t.k)

let output_lane t name lane =
  if lane < 0 || lane >= lanes t then
    invalid_arg
      (Printf.sprintf "Slab.output_lane: lane %d out of range (engine has %d lanes)"
         lane (lanes t));
  let comp = output_comp "Slab.output_lane" t name in
  Packed.lane
    t.values.((comp * t.k) + (lane / lanes_per_word))
    (lane mod lanes_per_word)

let outputs t =
  List.map
    (fun (s, i) -> (s, t.values.(i * t.k)))
    t.prog.Kernel.netlist.Netlist.outputs

let cycle t = t.cycle
let netlist t = t.prog.Kernel.netlist
let critical_path t = t.prog.Kernel.levels.Levelize.critical_path
let fused_gates t = t.prog.Kernel.fused

let set_forces t forces =
  if t.prog.Kernel.fused > 0 then
    invalid_arg "Slab.set_forces: requires an engine built with ~fuse:false";
  if t.gating then
    invalid_arg "Slab.set_forces: requires an engine built with ~gating:false";
  let slots = Array.make (Kernel.n_force_slots t.prog) [] in
  Array.iter
    (fun f ->
      if
        Array.length f.force0 <> t.k
        || Array.length f.force1 <> t.k
        || Array.length f.flip <> t.k
      then
        invalid_arg
          (Printf.sprintf "Slab.set_forces: mask arrays must have k = %d words"
             t.k);
      let slot = Kernel.force_slot ~what:"Slab.set_forces" t.prog f.f_site in
      slots.(slot) <- f :: slots.(slot))
    forces;
  t.force_slots <- Array.map (fun l -> Array.of_list (List.rev l)) slots

let clear_forces t = t.force_slots <- [||]

let apply_forces t slot =
  let values = t.values and k = t.k in
  for j = 0 to Array.length slot - 1 do
    let f = Array.unsafe_get slot j in
    let base = f.f_site * k in
    for w = 0 to k - 1 do
      let v = Array.unsafe_get values (base + w) in
      Array.unsafe_set values (base + w)
        ((((v land lnot (Array.unsafe_get f.force0 w))
          lor Array.unsafe_get f.force1 w)
         lxor Array.unsafe_get f.flip w)
        land lane_mask)
    done
  done

(* ------------------------------------------------------------------ *)
(* Ungated settle, k = 1: the wide engine's loops verbatim (scaled
   indices are the plain indices).                                     *)

let settle_rank_k1 values (kn : Kernel.kernel) =
  let dst = kn.inv_dst and src = kn.inv_src in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (lnot (Array.unsafe_get values (Array.unsafe_get src j)) land lane_mask)
  done;
  let dst = kn.and_dst and s0 = kn.and_s0 and s1 = kn.and_s1 in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get s0 j)
      land Array.unsafe_get values (Array.unsafe_get s1 j))
  done;
  let dst = kn.or_dst and s0 = kn.or_s0 and s1 = kn.or_s1 in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get s0 j)
      lor Array.unsafe_get values (Array.unsafe_get s1 j))
  done;
  let dst = kn.xor_dst and s0 = kn.xor_s0 and s1 = kn.xor_s1 in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get s0 j)
      lxor Array.unsafe_get values (Array.unsafe_get s1 j))
  done;
  let dst = kn.andor_dst and a = kn.andor_a and b = kn.andor_b
  and c = kn.andor_c and d = kn.andor_d in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get a j)
       land Array.unsafe_get values (Array.unsafe_get b j)
      lor (Array.unsafe_get values (Array.unsafe_get c j)
          land Array.unsafe_get values (Array.unsafe_get d j)))
  done;
  let dst = kn.orand_dst and a = kn.orand_a and b = kn.orand_b
  and c = kn.orand_c in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get a j)
       land Array.unsafe_get values (Array.unsafe_get b j)
      lor Array.unsafe_get values (Array.unsafe_get c j))
  done;
  let dst = kn.xor3_dst and a = kn.xor3_a and b = kn.xor3_b and c = kn.xor3_c in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get a j)
      lxor Array.unsafe_get values (Array.unsafe_get b j)
      lxor Array.unsafe_get values (Array.unsafe_get c j))
  done;
  let dst = kn.out_dst and src = kn.out_src in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get src j))
  done

(* ------------------------------------------------------------------ *)
(* Ungated settle, 4 | k: each gate walks its K-word run 4 words per
   iteration — the index loads happen once per gate, the word traffic
   streams.                                                            *)

let settle_rank_quad values k (kn : Kernel.kernel) =
  let dst = kn.inv_dst and src = kn.inv_src in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (lnot (Array.unsafe_get values (s + q)) land lane_mask);
      Array.unsafe_set values (d + q + 1)
        (lnot (Array.unsafe_get values (s + q + 1)) land lane_mask);
      Array.unsafe_set values (d + q + 2)
        (lnot (Array.unsafe_get values (s + q + 2)) land lane_mask);
      Array.unsafe_set values (d + q + 3)
        (lnot (Array.unsafe_get values (s + q + 3)) land lane_mask);
      w := q + 4
    done
  done;
  let dst = kn.and_dst and s0 = kn.and_s0 and s1 = kn.and_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (a + q) land Array.unsafe_get values (b + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (a + q + 1)
        land Array.unsafe_get values (b + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (a + q + 2)
        land Array.unsafe_get values (b + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (a + q + 3)
        land Array.unsafe_get values (b + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.or_dst and s0 = kn.or_s0 and s1 = kn.or_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (a + q) lor Array.unsafe_get values (b + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (a + q + 1)
        lor Array.unsafe_get values (b + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (a + q + 2)
        lor Array.unsafe_get values (b + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (a + q + 3)
        lor Array.unsafe_get values (b + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.xor_dst and s0 = kn.xor_s0 and s1 = kn.xor_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (a + q) lxor Array.unsafe_get values (b + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (a + q + 1)
        lxor Array.unsafe_get values (b + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (a + q + 2)
        lxor Array.unsafe_get values (b + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (a + q + 3)
        lxor Array.unsafe_get values (b + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.andor_dst and a = kn.andor_a and b = kn.andor_b
  and c = kn.andor_c and d4 = kn.andor_d in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j
    and pd = Array.unsafe_get d4 j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (pa + q)
         land Array.unsafe_get values (pb + q)
        lor (Array.unsafe_get values (pc + q)
            land Array.unsafe_get values (pd + q)));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (pa + q + 1)
         land Array.unsafe_get values (pb + q + 1)
        lor (Array.unsafe_get values (pc + q + 1)
            land Array.unsafe_get values (pd + q + 1)));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (pa + q + 2)
         land Array.unsafe_get values (pb + q + 2)
        lor (Array.unsafe_get values (pc + q + 2)
            land Array.unsafe_get values (pd + q + 2)));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (pa + q + 3)
         land Array.unsafe_get values (pb + q + 3)
        lor (Array.unsafe_get values (pc + q + 3)
            land Array.unsafe_get values (pd + q + 3)));
      w := q + 4
    done
  done;
  let dst = kn.orand_dst and a = kn.orand_a and b = kn.orand_b
  and c = kn.orand_c in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (pa + q)
         land Array.unsafe_get values (pb + q)
        lor Array.unsafe_get values (pc + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (pa + q + 1)
         land Array.unsafe_get values (pb + q + 1)
        lor Array.unsafe_get values (pc + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (pa + q + 2)
         land Array.unsafe_get values (pb + q + 2)
        lor Array.unsafe_get values (pc + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (pa + q + 3)
         land Array.unsafe_get values (pb + q + 3)
        lor Array.unsafe_get values (pc + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.xor3_dst and a = kn.xor3_a and b = kn.xor3_b and c = kn.xor3_c in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (pa + q)
        lxor Array.unsafe_get values (pb + q)
        lxor Array.unsafe_get values (pc + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (pa + q + 1)
        lxor Array.unsafe_get values (pb + q + 1)
        lxor Array.unsafe_get values (pc + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (pa + q + 2)
        lxor Array.unsafe_get values (pb + q + 2)
        lxor Array.unsafe_get values (pc + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (pa + q + 3)
        lxor Array.unsafe_get values (pb + q + 3)
        lxor Array.unsafe_get values (pc + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.out_dst and src = kn.out_src in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q) (Array.unsafe_get values (s + q));
      Array.unsafe_set values (d + q + 1) (Array.unsafe_get values (s + q + 1));
      Array.unsafe_set values (d + q + 2) (Array.unsafe_get values (s + q + 2));
      Array.unsafe_set values (d + q + 3) (Array.unsafe_get values (s + q + 3));
      w := q + 4
    done
  done

(* ------------------------------------------------------------------ *)
(* Ungated settle, any k: plain [for w] inner loops.                   *)

let settle_rank_gen values k (kn : Kernel.kernel) =
  let km1 = k - 1 in
  let dst = kn.inv_dst and src = kn.inv_src in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (lnot (Array.unsafe_get values (s + w)) land lane_mask)
    done
  done;
  let dst = kn.and_dst and s0 = kn.and_s0 and s1 = kn.and_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (a + w) land Array.unsafe_get values (b + w))
    done
  done;
  let dst = kn.or_dst and s0 = kn.or_s0 and s1 = kn.or_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (a + w) lor Array.unsafe_get values (b + w))
    done
  done;
  let dst = kn.xor_dst and s0 = kn.xor_s0 and s1 = kn.xor_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (a + w) lxor Array.unsafe_get values (b + w))
    done
  done;
  let dst = kn.andor_dst and a = kn.andor_a and b = kn.andor_b
  and c = kn.andor_c and d4 = kn.andor_d in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j
    and pd = Array.unsafe_get d4 j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (pa + w)
         land Array.unsafe_get values (pb + w)
        lor (Array.unsafe_get values (pc + w)
            land Array.unsafe_get values (pd + w)))
    done
  done;
  let dst = kn.orand_dst and a = kn.orand_a and b = kn.orand_b
  and c = kn.orand_c in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (pa + w)
         land Array.unsafe_get values (pb + w)
        lor Array.unsafe_get values (pc + w))
    done
  done;
  let dst = kn.xor3_dst and a = kn.xor3_a and b = kn.xor3_b and c = kn.xor3_c in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (pa + w)
        lxor Array.unsafe_get values (pb + w)
        lxor Array.unsafe_get values (pc + w))
    done
  done;
  let dst = kn.out_dst and src = kn.out_src in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w) (Array.unsafe_get values (s + w))
    done
  done

(* ------------------------------------------------------------------ *)
(* Gated settle, detecting run: change-detect each gate's K-word result
   and mark its reader ranks.  Slightly more work per evaluated gate
   than the ungated loops (one extra load and an xor per word) — the
   payoff is the ranks never entered.  Returns whether any gate in the
   rank changed, feeding the hot/detect adaptation.                    *)

let settle_rank_detect t (kn : Kernel.kernel) (pk : Kernel.kernel) =
  let values = t.values and k = t.k in
  let km1 = k - 1 in
  let dirty = t.rank_dirty and consumers = t.consumers in
  let changed = ref false in
  let dst = kn.inv_dst and src = kn.inv_src and dst_u = pk.inv_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv = lnot (Array.unsafe_get values (s + w)) land lane_mask in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_ranks dirty consumers.(Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.and_dst and s0 = kn.and_s0 and s1 = kn.and_s1
      and dst_u = pk.and_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and a = Array.unsafe_get s0 j
        and b = Array.unsafe_get s1 j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (a + w) land Array.unsafe_get values (b + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_ranks dirty consumers.(Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.or_dst and s0 = kn.or_s0 and s1 = kn.or_s1
      and dst_u = pk.or_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and a = Array.unsafe_get s0 j
        and b = Array.unsafe_get s1 j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (a + w) lor Array.unsafe_get values (b + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_ranks dirty consumers.(Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.xor_dst and s0 = kn.xor_s0 and s1 = kn.xor_s1
      and dst_u = pk.xor_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and a = Array.unsafe_get s0 j
        and b = Array.unsafe_get s1 j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (a + w) lxor Array.unsafe_get values (b + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_ranks dirty consumers.(Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.andor_dst and a = kn.andor_a and b = kn.andor_b
      and c = kn.andor_c and d4 = kn.andor_d and dst_u = pk.andor_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and pa = Array.unsafe_get a j
        and pb = Array.unsafe_get b j
        and pc = Array.unsafe_get c j
        and pd = Array.unsafe_get d4 j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (pa + w)
             land Array.unsafe_get values (pb + w)
            lor (Array.unsafe_get values (pc + w)
                land Array.unsafe_get values (pd + w))
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_ranks dirty consumers.(Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.orand_dst and a = kn.orand_a and b = kn.orand_b
      and c = kn.orand_c and dst_u = pk.orand_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and pa = Array.unsafe_get a j
        and pb = Array.unsafe_get b j
        and pc = Array.unsafe_get c j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (pa + w)
             land Array.unsafe_get values (pb + w)
            lor Array.unsafe_get values (pc + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_ranks dirty consumers.(Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.xor3_dst and a = kn.xor3_a and b = kn.xor3_b
      and c = kn.xor3_c and dst_u = pk.xor3_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and pa = Array.unsafe_get a j
        and pb = Array.unsafe_get b j
        and pc = Array.unsafe_get c j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (pa + w)
            lxor Array.unsafe_get values (pb + w)
            lxor Array.unsafe_get values (pc + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_ranks dirty consumers.(Array.unsafe_get dst_u j)
        end
      done;
      (* outports have no consumer ranks: plain copies, no detection *)
      let dst = kn.out_dst and src = kn.out_src in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
        for w = 0 to km1 do
          Array.unsafe_set values (d + w) (Array.unsafe_get values (s + w))
        done
      done;
      !changed

(* Gated settle: run only dirty ranks; hot ranks take the fast ungated
   loops and mark their whole consumer union, detecting ranks pay for
   precision and drive the mode transitions. *)
let settle_gated t =
  let values = t.values and k = t.k in
  let dirty = t.rank_dirty in
  let kernels = t.kernels_s and pkernels = t.prog.Kernel.kernels in
  let modes = t.rank_mode and streaks = t.rank_streak in
  for lvl = 0 to Array.length kernels - 1 do
    if Array.unsafe_get dirty lvl then begin
      Array.unsafe_set dirty lvl false;
      let kn : Kernel.kernel = Array.unsafe_get kernels lvl in
      let mode = Array.unsafe_get modes lvl in
      if mode > 0 then begin
        Array.unsafe_set modes lvl (mode - 1);
        if k = 1 then settle_rank_k1 values kn
        else if k land 3 = 0 then settle_rank_quad values k kn
        else settle_rank_gen values k kn;
        mark_ranks dirty t.rank_consumers.(lvl)
      end
      else if settle_rank_detect t kn (Array.unsafe_get pkernels lvl) then begin
        let s = Array.unsafe_get streaks lvl + 1 in
        if s >= hot_after then begin
          Array.unsafe_set streaks lvl 0;
          Array.unsafe_set modes lvl probe_period
        end
        else Array.unsafe_set streaks lvl s
      end
      else Array.unsafe_set streaks lvl 0
    end
  done

let settle t =
  if t.gating then settle_gated t
  else begin
    let values = t.values and k = t.k in
    let kernels = t.kernels_s in
    let slots = t.force_slots in
    let forced = Array.length slots > 0 in
    if forced then apply_forces t (Array.unsafe_get slots 0);
    if k = 1 then
      for lvl = 0 to Array.length kernels - 1 do
        settle_rank_k1 values (Array.unsafe_get kernels lvl);
        if forced then apply_forces t (Array.unsafe_get slots (lvl + 1))
      done
    else if k land 3 = 0 then
      for lvl = 0 to Array.length kernels - 1 do
        settle_rank_quad values k (Array.unsafe_get kernels lvl);
        if forced then apply_forces t (Array.unsafe_get slots (lvl + 1))
      done
    else
      for lvl = 0 to Array.length kernels - 1 do
        settle_rank_gen values k (Array.unsafe_get kernels lvl);
        if forced then apply_forces t (Array.unsafe_get slots (lvl + 1))
      done
  end

let tick t =
  let values = t.values and next = t.dff_next and k = t.k in
  let km1 = k - 1 in
  let dffs = t.dffs_s and src = t.dff_src_s in
  let n = Array.length dffs in
  for j = 0 to n - 1 do
    let s = Array.unsafe_get src j and base = j * k in
    for w = 0 to km1 do
      Array.unsafe_set next (base + w) (Array.unsafe_get values (s + w))
    done
  done;
  if t.gating then begin
    let dirty = t.rank_dirty
    and consumers = t.consumers
    and dffs_u = t.prog.Kernel.dffs in
    for j = 0 to n - 1 do
      let d = Array.unsafe_get dffs j and base = j * k in
      let diff = ref 0 in
      for w = 0 to km1 do
        let old = Array.unsafe_get values (d + w) in
        let nv = Array.unsafe_get next (base + w) in
        diff := !diff lor (old lxor nv);
        Array.unsafe_set values (d + w) nv
      done;
      if !diff <> 0 then
        mark_ranks dirty consumers.(Array.unsafe_get dffs_u j)
    done
  end
  else
    for j = 0 to n - 1 do
      let d = Array.unsafe_get dffs j and base = j * k in
      for w = 0 to km1 do
        Array.unsafe_set values (d + w) (Array.unsafe_get next (base + w))
      done
    done;
  t.cycle <- t.cycle + 1

let step t =
  settle t;
  tick t

let run_packed t ~inputs ~cycles =
  reset t;
  let rows = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, vals) ->
        let value = match List.nth_opt vals c with Some w -> w | None -> 0 in
        let comp = input_comp "Slab.run_packed" t name in
        for w = 0 to t.k - 1 do
          write_word t comp w value
        done)
      inputs;
    settle t;
    rows := outputs t :: !rows;
    tick t
  done;
  List.rev !rows

let run_vectors t vectors =
  let nvec = Array.length vectors in
  let nl = netlist t in
  let in_ports = Array.of_list nl.Netlist.inputs in
  let out_ports = Array.of_list nl.Netlist.outputs in
  let nin = Array.length in_ports and nout = Array.length out_ports in
  Array.iter
    (fun v ->
      if Array.length v <> nin then
        invalid_arg "Slab.run_vectors: vector arity mismatch")
    vectors;
  let per_pass = lanes t in
  let results = Array.make nvec [||] in
  let npasses = (nvec + per_pass - 1) / per_pass in
  for p = 0 to npasses - 1 do
    let base = p * per_pass in
    let count = min per_pass (nvec - base) in
    reset t;
    for j = 0 to nin - 1 do
      let comp = snd in_ports.(j) in
      for w = 0 to t.k - 1 do
        let word = ref 0 in
        let lo = w * lanes_per_word in
        let hi = min (lo + lanes_per_word) count in
        for l = lo to hi - 1 do
          if vectors.(base + l).(j) then word := !word lor (1 lsl (l - lo))
        done;
        write_word t comp w !word
      done
    done;
    settle t;
    let out_words =
      Array.map
        (fun (_, i) -> Array.init t.k (fun w -> t.values.((i * t.k) + w)))
        out_ports
    in
    for l = 0 to count - 1 do
      let w = l / lanes_per_word and bit = l mod lanes_per_word in
      results.(base + l) <-
        Array.init nout (fun j -> Packed.lane out_words.(j).(w) bit)
    done
  done;
  results

let engine ?(gating = false) kk : (module Engine_intf.S) =
  if kk < 1 then invalid_arg "Slab.engine: k must be >= 1";
  (module struct
    type nonrec t = t

    let name =
      Printf.sprintf "slab(k=%d%s)" kk (if gating then ",gated" else "")

    let create ?optimize ?relayout ?fuse ?certify nl =
      create ~k:kk ~gating ?optimize ?relayout ?fuse ?certify nl

    let words = words
    let replicate = replicate
    let reset = reset
    let set_input_word = set_input_word
    let set_input_lane = set_input_lane
    let settle = settle
    let tick = tick
    let step = step
    let output_word = output_word
    let output_lane = output_lane
    let peek_word = peek_word
    let poke_word = poke_word
    let cycle = cycle
    let netlist = netlist
  end)
