(* Multi-word slab simulator: K consecutive 62-lane words per signal in
   one flat int array.

   {!Compiled_wide} is bounded at 62 lanes because each signal is one
   tagged int; here signal [i] owns words [i*k .. i*k + k - 1] of the
   slab, and every kernel loop runs its gate over the whole K-word run
   before moving on — 62*K lanes per settle pass, with the per-gate
   dst/src index loads (the bottleneck of the wide engine) amortized K
   ways and the K value words streaming from consecutive addresses.  The
   compile pipeline is {!Kernel}, shared with {!Compiled_wide}; the only
   compile-time addition is pre-scaling every index array by [k] so the
   hot loops never multiply.

   Inner loops come in four flavors picked at [settle] time: an exact
   copy of the wide engine's 1-word loops for [k = 1], a 4-way unrolled
   walk when [4 | k] (the intended operating points k = 4/8/16), a
   generic [for w] loop otherwise, and — with [~simd:true] — the
   {!Simd} C stubs, which run each block from a flat descriptor array
   with AVX2/NEON vector loads when the build enabled them (tagged ints
   vectorize directly: and/or preserve the tag, xor re-ors it, inv
   masks against [lane_mask lsl 1]).

   The units of both iteration and gating are the compile-time rank
   {e blocks} of {!Kernel.program}: every levelized rank is tiled into
   blocks of at most {!Kernel.gates_per_block} gates ({!Kernel.tuning},
   sized so one block's K-word value traffic fits L1/L2), and each
   block runs all its per-kind loops before the sweep moves on — a
   k = 16 slab re-walks a cache-hot tile instead of streaming the whole
   rank once per gate kind.

   Activity gating ([~gating:true]) adds a per-block dirty bitset (int
   words, 32 blocks per word) over {!Kernel.consumer_blocks}, plus a
   per-dff-cluster dirty bitset over {!Kernel.dff_sink_clusters} for
   the latch phase:

   - every mutation (input writes, pokes, force application, the dff
     latch phase) compares the new word against the old and, on any
     difference, marks the blocks that read the component and the dff
     clusters that latch it;
   - [settle] skips blocks whose bit is clear and, inside a running
     block, change-detects each gate's K-word result to mark *its*
     readers — consumer blocks always sit at strictly higher ranks, so
     one ascending sweep propagates exactly the active cone;
   - [tick] latches only dirty dff clusters (two staged passes, so dff
     chains crossing clusters still see pre-tick values);
   - a settled quiescent engine costs one scan of the bitset words per
     cycle — an idle CPU pays for its state nothing at all.

   Change detection costs an extra load and xor per word plus a
   consumer-marking pass per changed gate — nearly 2x on a circuit
   whose every block toggles every cycle.  Gating is therefore
   adaptive per block: a block whose gates changed on
   [tuning.hot_after] consecutive detected runs flips to a {e hot}
   mode that runs the plain ungated kernels and conservatively marks
   the union of its consumer blocks (and dff sink clusters),
   re-probing with detection every [tuning.probe_period] runs.  A hot
   block that stops being marked dirty simply stops running, so
   quiescence still propagates instantly; the probe only exists to
   catch blocks whose inputs keep toggling while their outputs have
   stabilized.  High-toggle circuits thus pay only the bitset scan and
   the rare probe (a few percent), while idle workloads keep the full
   skip — at block, not rank, granularity, so the active cone of a
   mostly-idle wide rank re-runs only its own tiles.

   Forces compose with gating: [settle] applies force masks at the
   usual rank-boundary slots with change detection, marking the forced
   site's consumer blocks and dff sink clusters exactly like any other
   mutation, and [set_forces]/[clear_forces] re-mark each affected
   site's own block so a cleared force is recomputed to its natural
   value on the next settle.  Campaigns therefore run gated or
   ungated. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module Packed = Hydra_core.Packed

let lanes_per_word = Packed.lanes
let lane_mask = Packed.lane_mask

type force = {
  f_site : int;
  force0 : int array;
  force1 : int array;
  flip : int array;
}

type t = {
  prog : Kernel.program;
  k : int;
  gating : bool;
  simd : bool;
  blocks_s : Kernel.kernel array;
      (* [prog.blocks] with every index pre-scaled by [k] *)
  simd_desc : int array array;
      (* per block: the flat descriptor {!Simd.settle_block} runs;
         [[||]] placeholders when [not simd] *)
  consts_s : (int * int) array;  (* scaled base index, broadcast word *)
  dffs_s : int array;  (* scaled dff bases *)
  dff_src_s : int array;  (* scaled driver bases *)
  dff_init_w : int array;  (* broadcast power-up words *)
  consumers : int array array;
      (* per (unscaled) component: blocks whose kernels read it *)
  dff_sinks : int array array;
      (* per (unscaled) component: dff clusters whose latch reads it *)
  comp_owner : int array;
      (* per (unscaled) component: block whose kernel stores it, or -1 *)
  dff_of_comp : int array;
      (* per (unscaled) component: its index into [prog.dffs], or -1 *)
  block_consumers : (int array * int array) array;
      (* per block: union of its gates' consumer blocks (hot marking),
         as a sparse (bitset word, OR mask) pair list *)
  block_dff_sinks : (int array * int array) array;
      (* per block: union of its gates' dff sink clusters (hot marking) *)
  cluster_consumers : (int array * int array) array;
      (* per dff cluster: union of its dffs' consumer blocks — the
         gated tick marks once per changed cluster, not per dff *)
  cluster_sinks : (int array * int array) array;
      (* per dff cluster: union of its dffs' own dff sink clusters
         (dff-to-dff chains) *)
  values : int array;  (* the slab: size * k + pad *)
  dff_next : int array;  (* ndffs * k + pad *)
  block_dirty : int array;
      (* bitset, 32 blocks per int; only read when gating *)
  dff_dirty : int array;
      (* bitset over dff clusters; only read when gating *)
  cluster_scratch : int array;
      (* tick's snapshot of dirty clusters, length n_dff_clusters *)
  block_mode : int array;
      (* 0 = detecting; n > 0 = hot for n more runs before a probe *)
  block_streak : int array;
      (* consecutive changed runs while detecting; at
         [tuning.hot_after], go hot for [tuning.probe_period] runs *)
  mutable cycle : int;
  mutable force_slots : force array array;
  mutable last_marked : int;
      (* last component [write_word] marked, or -1; consecutive writes
         to the k words of one component mark its consumers once.
         Invalidated wherever dirty bits are consumed (settle, tick). *)
}

let k t = t.k
let words t = t.k
let program t = t.prog
let lanes t = lanes_per_word * t.k
let gated t = t.gating
let simd t = t.simd

(* --- int-word bitsets: 32 bits per word so the shift/mask never meets
   OCaml's 63-bit int edge, [i lsr 5] / [i land 31] indexing --- *)

let bitset_make n = Array.make ((n + 31) lsr 5) 0

(* Set every valid bit, leaving the excess bits of the last word clear so
   a zero-scan of a fully-settled engine really sees all zeros. *)
let bitset_fill b n =
  let full = n lsr 5 in
  Array.fill b 0 full (-1 land 0xFFFFFFFF);
  let rest = n land 31 in
  if rest > 0 then b.(full) <- (1 lsl rest) - 1

let bit_test b i = b.(i lsr 5) land (1 lsl (i land 31)) <> 0

let bit_clear b i =
  let w = i lsr 5 in
  b.(w) <- b.(w) land lnot (1 lsl (i land 31))

let mark_bit b i =
  let w = i lsr 5 in
  b.(w) <- b.(w) lor (1 lsl (i land 31))

let mark_bits b idxs =
  for x = 0 to Array.length idxs - 1 do
    let i = Array.unsafe_get idxs x in
    let w = i lsr 5 in
    Array.unsafe_set b w (Array.unsafe_get b w lor (1 lsl (i land 31)))
  done

(* A precomputed union of dirty-bit targets, stored as (bitset word
   index, OR mask) pairs so marking the whole union is a handful of
   word ORs instead of a walk over every member index. *)
let mask_of_union idxs =
  let words = ref [] and masks = ref [] in
  Array.iter
    (fun i ->
      let w = i lsr 5 and m = 1 lsl (i land 31) in
      match !words with
      | w' :: _ when w' = w -> masks := (List.hd !masks lor m) :: List.tl !masks
      | _ ->
          words := w :: !words;
          masks := m :: !masks)
    idxs;
  (Array.of_list (List.rev !words), Array.of_list (List.rev !masks))

let or_mask b (idx, msk) =
  for x = 0 to Array.length idx - 1 do
    let w = Array.unsafe_get idx x in
    Array.unsafe_set b w (Array.unsafe_get b w lor Array.unsafe_get msk x)
  done

let any_bit b =
  let n = Array.length b in
  let rec go i = i < n && (Array.unsafe_get b i <> 0 || go (i + 1)) in
  go 0

let scale_kernel c (kn : Kernel.kernel) : Kernel.kernel =
  let s = Array.map (fun i -> i * c) in
  {
    inv_dst = s kn.inv_dst;
    inv_src = s kn.inv_src;
    and_dst = s kn.and_dst;
    and_s0 = s kn.and_s0;
    and_s1 = s kn.and_s1;
    or_dst = s kn.or_dst;
    or_s0 = s kn.or_s0;
    or_s1 = s kn.or_s1;
    xor_dst = s kn.xor_dst;
    xor_s0 = s kn.xor_s0;
    xor_s1 = s kn.xor_s1;
    andor_dst = s kn.andor_dst;
    andor_a = s kn.andor_a;
    andor_b = s kn.andor_b;
    andor_c = s kn.andor_c;
    andor_d = s kn.andor_d;
    orand_dst = s kn.orand_dst;
    orand_a = s kn.orand_a;
    orand_b = s kn.orand_b;
    orand_c = s kn.orand_c;
    xor3_dst = s kn.xor3_dst;
    xor3_a = s kn.xor3_a;
    xor3_b = s kn.xor3_b;
    xor3_c = s kn.xor3_c;
    out_dst = s kn.out_dst;
    out_src = s kn.out_src;
  }

let apply_initial t =
  let values = t.values and km1 = t.k - 1 in
  Array.iter
    (fun (base, w) ->
      for x = base to base + km1 do
        Array.unsafe_set values x w
      done)
    t.consts_s;
  Array.iteri
    (fun j base ->
      let w = t.dff_init_w.(j) in
      for x = base to base + km1 do
        Array.unsafe_set values x w
      done)
    t.dffs_s

(* Cache-line slack so replicas allocated back to back never share a
   line across domains (cf. {!Compiled_wide}). *)
let pad = 8

(* Per block, the sorted union of its gates' consumer blocks (resp. dff
   sink clusters): what a hot block marks after an undetected run. *)
let block_union universe (prog : Kernel.program) per_comp =
  Array.map
    (fun (kn : Kernel.kernel) ->
      let seen = Array.make (max 1 universe) false in
      let add comp = Array.iter (fun b -> seen.(b) <- true) per_comp.(comp) in
      Array.iter add kn.inv_dst;
      Array.iter add kn.and_dst;
      Array.iter add kn.or_dst;
      Array.iter add kn.xor_dst;
      Array.iter add kn.andor_dst;
      Array.iter add kn.orand_dst;
      Array.iter add kn.xor3_dst;
      let out = ref [] in
      for b = universe - 1 downto 0 do
        if seen.(b) then out := b :: !out
      done;
      Array.of_list !out)
    prog.Kernel.blocks

(* Per dff cluster, the sorted union of its dffs' [per_comp] entries:
   one mark per changed cluster keeps the gated tick's bookkeeping off
   the per-dff fast path. *)
let cluster_union universe (prog : Kernel.program) per_comp =
  let dffs = prog.Kernel.dffs in
  let n = Array.length dffs in
  let cpd = prog.Kernel.dffs_per_cluster in
  Array.init prog.Kernel.n_dff_clusters (fun cl ->
      let seen = Array.make (max 1 universe) false in
      let hi = min n ((cl + 1) * cpd) - 1 in
      for j = cl * cpd to hi do
        Array.iter (fun b -> seen.(b) <- true) per_comp.(dffs.(j))
      done;
      let out = ref [] in
      for b = universe - 1 downto 0 do
        if seen.(b) then out := b :: !out
      done;
      Array.of_list !out)

(* The flat block descriptor the {!Simd} C stub walks: [k] then the
   eight kind counts, then (dst, src...) index tuples per kind in stub
   order, every index pre-scaled by [k]. *)
let simd_descriptor k (kn : Kernel.kernel) =
  let n_inv = Array.length kn.inv_dst
  and n_and = Array.length kn.and_dst
  and n_or = Array.length kn.or_dst
  and n_xor = Array.length kn.xor_dst
  and n_andor = Array.length kn.andor_dst
  and n_orand = Array.length kn.orand_dst
  and n_xor3 = Array.length kn.xor3_dst
  and n_out = Array.length kn.out_dst in
  let len =
    9
    + (2 * (n_inv + n_out))
    + (3 * (n_and + n_or + n_xor))
    + (5 * n_andor)
    + (4 * (n_orand + n_xor3))
  in
  let d = Array.make len 0 in
  d.(0) <- k;
  d.(1) <- n_inv;
  d.(2) <- n_and;
  d.(3) <- n_or;
  d.(4) <- n_xor;
  d.(5) <- n_andor;
  d.(6) <- n_orand;
  d.(7) <- n_xor3;
  d.(8) <- n_out;
  let pos = ref 9 in
  let push v =
    d.(!pos) <- v;
    incr pos
  in
  Array.iteri
    (fun j dst ->
      push dst;
      push kn.inv_src.(j))
    kn.inv_dst;
  Array.iteri
    (fun j dst ->
      push dst;
      push kn.and_s0.(j);
      push kn.and_s1.(j))
    kn.and_dst;
  Array.iteri
    (fun j dst ->
      push dst;
      push kn.or_s0.(j);
      push kn.or_s1.(j))
    kn.or_dst;
  Array.iteri
    (fun j dst ->
      push dst;
      push kn.xor_s0.(j);
      push kn.xor_s1.(j))
    kn.xor_dst;
  Array.iteri
    (fun j dst ->
      push dst;
      push kn.andor_a.(j);
      push kn.andor_b.(j);
      push kn.andor_c.(j);
      push kn.andor_d.(j))
    kn.andor_dst;
  Array.iteri
    (fun j dst ->
      push dst;
      push kn.orand_a.(j);
      push kn.orand_b.(j);
      push kn.orand_c.(j))
    kn.orand_dst;
  Array.iteri
    (fun j dst ->
      push dst;
      push kn.xor3_a.(j);
      push kn.xor3_b.(j);
      push kn.xor3_c.(j))
    kn.xor3_dst;
  Array.iteri
    (fun j dst ->
      push dst;
      push kn.out_src.(j))
    kn.out_dst;
  assert (!pos = len);
  d

(* Build an engine over an already-compiled program (the slab's K is the
   program's k): no compile-time pass re-runs, only the per-instance
   value state plus the gating/simd metadata derived from [prog]. *)
let of_program ?(gating = false) ?(simd = false) prog =
  let k = prog.Kernel.k in
  let consumers = Kernel.consumer_blocks prog in
  let dff_sinks = Kernel.dff_sink_clusters prog in
  let nblocks = Array.length prog.Kernel.blocks in
  let blocks_s = Array.map (scale_kernel k) prog.Kernel.blocks in
  let t =
    {
      prog;
      k;
      gating;
      simd;
      blocks_s;
      simd_desc =
        (if simd then Array.map (simd_descriptor k) blocks_s
         else Array.make nblocks [||]);
      consts_s =
        Array.map (fun (i, b) -> (i * k, Packed.broadcast b)) prog.Kernel.consts;
      dffs_s = Array.map (fun i -> i * k) prog.Kernel.dffs;
      dff_src_s = Array.map (fun i -> i * k) prog.Kernel.dff_src;
      dff_init_w = Array.map Packed.broadcast prog.Kernel.dff_init;
      consumers;
      dff_sinks;
      comp_owner = Kernel.comp_block prog;
      dff_of_comp =
        (let a = Array.make (Kernel.size prog) (-1) in
         Array.iteri (fun j comp -> a.(comp) <- j) prog.Kernel.dffs;
         a);
      block_consumers =
        Array.map mask_of_union (block_union nblocks prog consumers);
      block_dff_sinks =
        Array.map mask_of_union
          (block_union prog.Kernel.n_dff_clusters prog dff_sinks);
      cluster_consumers =
        Array.map mask_of_union (cluster_union nblocks prog consumers);
      cluster_sinks =
        Array.map mask_of_union
          (cluster_union prog.Kernel.n_dff_clusters prog dff_sinks);
      values = Array.make ((Kernel.size prog * k) + pad) 0;
      dff_next = Array.make ((Array.length prog.Kernel.dffs * k) + pad) 0;
      block_dirty = bitset_make nblocks;
      dff_dirty = bitset_make prog.Kernel.n_dff_clusters;
      cluster_scratch = Array.make (max 1 prog.Kernel.n_dff_clusters) 0;
      block_mode = Array.make nblocks 0;
      block_streak = Array.make nblocks 0;
      cycle = 0;
      force_slots = [||];
      last_marked = -1;
    }
  in
  bitset_fill t.block_dirty nblocks;
  bitset_fill t.dff_dirty prog.Kernel.n_dff_clusters;
  apply_initial t;
  t

let create ?(k = 8) ?(gating = false) ?(simd = false) ?(optimize = false)
    ?(relayout = true) ?(fuse = true) ?(certify = false)
    ?(tuning = Kernel.default_tuning) netlist =
  if k < 1 then invalid_arg "Slab.create: k must be >= 1";
  of_program ~gating ~simd
    (Kernel.compile ~optimize ~relayout ~fuse ~certify ~tuning ~k netlist)

let replicate t =
  let nblocks = Array.length t.prog.Kernel.blocks in
  let r =
    {
      t with
      values = Array.make (Array.length t.values) 0;
      dff_next = Array.make (Array.length t.dff_next) 0;
      block_dirty = bitset_make nblocks;
      dff_dirty = bitset_make t.prog.Kernel.n_dff_clusters;
      cluster_scratch = Array.make (Array.length t.cluster_scratch) 0;
      block_mode = Array.make nblocks 0;
      block_streak = Array.make nblocks 0;
      cycle = 0;
      force_slots = [||];
      last_marked = -1;
    }
  in
  bitset_fill r.block_dirty nblocks;
  bitset_fill r.dff_dirty t.prog.Kernel.n_dff_clusters;
  apply_initial r;
  r

(* Note the hot/detect adaptation state deliberately survives [reset]:
   it is a performance cache over the workload's toggle pattern, cannot
   affect simulated values (hot is conservative), and a reset-step loop
   re-running the same stimulus is exactly where staying hot pays. *)
let reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  apply_initial t;
  bitset_fill t.block_dirty (Array.length t.prog.Kernel.blocks);
  bitset_fill t.dff_dirty t.prog.Kernel.n_dff_clusters;
  t.cycle <- 0;
  t.last_marked <- -1

(* Every change-detected mutation marks through here: the blocks whose
   kernels read the component, and the dff clusters that latch it. *)
let mark_comp t comp =
  mark_bits t.block_dirty t.consumers.(comp);
  let ds = t.dff_sinks.(comp) in
  if Array.length ds > 0 then mark_bits t.dff_dirty ds

let check_word what t w =
  if w < 0 || w >= t.k then
    invalid_arg
      (Printf.sprintf "%s: word index %d out of range (engine has %d words)"
         what w t.k)

(* Every mutation funnels through here: masked write + (when gating)
   change detection and consumer marking. *)
let write_word t comp w v =
  let v = v land lane_mask in
  let idx = (comp * t.k) + w in
  if t.gating then begin
    if t.values.(idx) <> v then begin
      t.values.(idx) <- v;
      (* the k word-writes of one component arrive back to back; mark
         its consumers once, not once per word *)
      if t.last_marked <> comp then begin
        mark_comp t comp;
        t.last_marked <- comp
      end
    end
  end
  else t.values.(idx) <- v

let input_comp what t name =
  match Hashtbl.find_opt t.prog.Kernel.input_index name with
  | Some i -> i
  | None -> invalid_arg (what ^ ": unknown input " ^ name)

let set_input_word t name w v =
  check_word "Slab.set_input_word" t w;
  write_word t (input_comp "Slab.set_input_word" t name) w v

let set_input t name v = write_word t (input_comp "Slab.set_input" t name) 0 v

let set_input_bool t name b =
  let comp = input_comp "Slab.set_input_bool" t name in
  let w = Packed.broadcast b in
  for j = 0 to t.k - 1 do
    write_word t comp j w
  done

let set_input_lane t name lane b =
  if lane < 0 || lane >= lanes t then
    invalid_arg
      (Printf.sprintf "Slab.set_input_lane: lane %d out of range (engine has %d lanes)"
         lane (lanes t));
  let comp = input_comp "Slab.set_input_lane" t name in
  let w = lane / lanes_per_word and bit = lane mod lanes_per_word in
  write_word t comp w (Packed.set_lane t.values.((comp * t.k) + w) bit b)

let peek_word t i w =
  check_word "Slab.peek_word" t w;
  t.values.((i * t.k) + w)

let peek t i = t.values.(i * t.k)

let poke_word t i w v =
  check_word "Slab.poke_word" t w;
  write_word t i w v

let poke t i v = write_word t i 0 v

let output_comp what t name =
  match Hashtbl.find_opt t.prog.Kernel.output_index name with
  | Some i -> i
  | None -> invalid_arg (what ^ ": unknown output " ^ name)

let output_word t name w =
  check_word "Slab.output_word" t w;
  t.values.((output_comp "Slab.output_word" t name * t.k) + w)

let output t name = t.values.(output_comp "Slab.output" t name * t.k)

let output_lane t name lane =
  if lane < 0 || lane >= lanes t then
    invalid_arg
      (Printf.sprintf "Slab.output_lane: lane %d out of range (engine has %d lanes)"
         lane (lanes t));
  let comp = output_comp "Slab.output_lane" t name in
  Packed.lane
    t.values.((comp * t.k) + (lane / lanes_per_word))
    (lane mod lanes_per_word)

let outputs t =
  List.map
    (fun (s, i) -> (s, t.values.(i * t.k)))
    t.prog.Kernel.netlist.Netlist.outputs

let cycle t = t.cycle
let netlist t = t.prog.Kernel.netlist
let critical_path t = t.prog.Kernel.levels.Levelize.critical_path
let fused_gates t = t.prog.Kernel.fused

(* On a gated engine, installing, replacing or clearing forces marks
   every affected site's own block (so a gate no longer forced is
   recomputed to its natural value on the next settle — the recompute's
   change detection then propagates downstream) or, for a dff site, its
   own latch cluster (so the next tick re-latches the natural driver
   value), plus its consumer blocks and dff sink clusters.  Input and
   constant sites keep the forced value until re-driven, exactly like
   the ungated engine. *)
(* A forced site must be re-driven to its natural value before each
   force application, exactly as the ungated engine recomputes (gate)
   or re-latches (dff) it every cycle — otherwise a skipped block would
   let [apply_forces_detect] re-apply a flip mask to the already-forced
   value.  So each gated settle keeps every forced site's own block and
   own latch cluster dirty.  Input and constant sites have neither and
   keep the forced value until re-driven, matching the ungated
   engine. *)
let mark_force_own t =
  Array.iter
    (fun slot ->
      Array.iter
        (fun f ->
          let own = t.comp_owner.(f.f_site) in
          if own >= 0 then mark_bit t.block_dirty own;
          let j = t.dff_of_comp.(f.f_site) in
          if j >= 0 then
            mark_bit t.dff_dirty (j / t.prog.Kernel.dffs_per_cluster))
        slot)
    t.force_slots

let mark_force_sites t =
  if t.gating then begin
    mark_force_own t;
    Array.iter
      (fun slot -> Array.iter (fun f -> mark_comp t f.f_site) slot)
      t.force_slots
  end

let set_forces t forces =
  if t.prog.Kernel.fused > 0 then
    invalid_arg "Slab.set_forces: requires an engine built with ~fuse:false";
  mark_force_sites t;
  let slots = Array.make (Kernel.n_force_slots t.prog) [] in
  Array.iter
    (fun f ->
      if
        Array.length f.force0 <> t.k
        || Array.length f.force1 <> t.k
        || Array.length f.flip <> t.k
      then
        invalid_arg
          (Printf.sprintf "Slab.set_forces: mask arrays must have k = %d words"
             t.k);
      let slot = Kernel.force_slot ~what:"Slab.set_forces" t.prog f.f_site in
      slots.(slot) <- f :: slots.(slot))
    forces;
  t.force_slots <- Array.map (fun l -> Array.of_list (List.rev l)) slots;
  mark_force_sites t

let clear_forces t =
  mark_force_sites t;
  t.force_slots <- [||]

let apply_forces t slot =
  let values = t.values and k = t.k in
  for j = 0 to Array.length slot - 1 do
    let f = Array.unsafe_get slot j in
    let base = f.f_site * k in
    for w = 0 to k - 1 do
      let v = Array.unsafe_get values (base + w) in
      Array.unsafe_set values (base + w)
        ((((v land lnot (Array.unsafe_get f.force0 w))
          lor Array.unsafe_get f.force1 w)
         lxor Array.unsafe_get f.flip w)
        land lane_mask)
    done
  done

(* The gated flavor: same masks, but change-detected so a force edit (a
   campaign mutating its per-cycle flip masks in place, or a site whose
   block just recomputed a natural value the force overrides) marks the
   site's readers like any other mutation. *)
let apply_forces_detect t slot =
  let values = t.values and k = t.k in
  for j = 0 to Array.length slot - 1 do
    let f = Array.unsafe_get slot j in
    let base = f.f_site * k in
    let diff = ref 0 in
    for w = 0 to k - 1 do
      let v = Array.unsafe_get values (base + w) in
      let nv =
        (((v land lnot (Array.unsafe_get f.force0 w))
         lor Array.unsafe_get f.force1 w)
        lxor Array.unsafe_get f.flip w)
        land lane_mask
      in
      diff := !diff lor (v lxor nv);
      Array.unsafe_set values (base + w) nv
    done;
    if !diff <> 0 then mark_comp t f.f_site
  done

(* ------------------------------------------------------------------ *)
(* Ungated settle, k = 1: the wide engine's loops verbatim (scaled
   indices are the plain indices).                                     *)

let settle_block_k1 values (kn : Kernel.kernel) =
  let dst = kn.inv_dst and src = kn.inv_src in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (lnot (Array.unsafe_get values (Array.unsafe_get src j)) land lane_mask)
  done;
  let dst = kn.and_dst and s0 = kn.and_s0 and s1 = kn.and_s1 in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get s0 j)
      land Array.unsafe_get values (Array.unsafe_get s1 j))
  done;
  let dst = kn.or_dst and s0 = kn.or_s0 and s1 = kn.or_s1 in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get s0 j)
      lor Array.unsafe_get values (Array.unsafe_get s1 j))
  done;
  let dst = kn.xor_dst and s0 = kn.xor_s0 and s1 = kn.xor_s1 in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get s0 j)
      lxor Array.unsafe_get values (Array.unsafe_get s1 j))
  done;
  let dst = kn.andor_dst and a = kn.andor_a and b = kn.andor_b
  and c = kn.andor_c and d = kn.andor_d in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get a j)
       land Array.unsafe_get values (Array.unsafe_get b j)
      lor (Array.unsafe_get values (Array.unsafe_get c j)
          land Array.unsafe_get values (Array.unsafe_get d j)))
  done;
  let dst = kn.orand_dst and a = kn.orand_a and b = kn.orand_b
  and c = kn.orand_c in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get a j)
       land Array.unsafe_get values (Array.unsafe_get b j)
      lor Array.unsafe_get values (Array.unsafe_get c j))
  done;
  let dst = kn.xor3_dst and a = kn.xor3_a and b = kn.xor3_b and c = kn.xor3_c in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get a j)
      lxor Array.unsafe_get values (Array.unsafe_get b j)
      lxor Array.unsafe_get values (Array.unsafe_get c j))
  done;
  let dst = kn.out_dst and src = kn.out_src in
  for j = 0 to Array.length dst - 1 do
    Array.unsafe_set values
      (Array.unsafe_get dst j)
      (Array.unsafe_get values (Array.unsafe_get src j))
  done

(* ------------------------------------------------------------------ *)
(* Ungated settle, 4 | k: each gate walks its K-word run 4 words per
   iteration — the index loads happen once per gate, the word traffic
   streams.                                                            *)

let settle_block_quad values k (kn : Kernel.kernel) =
  let dst = kn.inv_dst and src = kn.inv_src in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (lnot (Array.unsafe_get values (s + q)) land lane_mask);
      Array.unsafe_set values (d + q + 1)
        (lnot (Array.unsafe_get values (s + q + 1)) land lane_mask);
      Array.unsafe_set values (d + q + 2)
        (lnot (Array.unsafe_get values (s + q + 2)) land lane_mask);
      Array.unsafe_set values (d + q + 3)
        (lnot (Array.unsafe_get values (s + q + 3)) land lane_mask);
      w := q + 4
    done
  done;
  let dst = kn.and_dst and s0 = kn.and_s0 and s1 = kn.and_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (a + q) land Array.unsafe_get values (b + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (a + q + 1)
        land Array.unsafe_get values (b + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (a + q + 2)
        land Array.unsafe_get values (b + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (a + q + 3)
        land Array.unsafe_get values (b + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.or_dst and s0 = kn.or_s0 and s1 = kn.or_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (a + q) lor Array.unsafe_get values (b + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (a + q + 1)
        lor Array.unsafe_get values (b + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (a + q + 2)
        lor Array.unsafe_get values (b + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (a + q + 3)
        lor Array.unsafe_get values (b + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.xor_dst and s0 = kn.xor_s0 and s1 = kn.xor_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (a + q) lxor Array.unsafe_get values (b + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (a + q + 1)
        lxor Array.unsafe_get values (b + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (a + q + 2)
        lxor Array.unsafe_get values (b + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (a + q + 3)
        lxor Array.unsafe_get values (b + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.andor_dst and a = kn.andor_a and b = kn.andor_b
  and c = kn.andor_c and d4 = kn.andor_d in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j
    and pd = Array.unsafe_get d4 j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (pa + q)
         land Array.unsafe_get values (pb + q)
        lor (Array.unsafe_get values (pc + q)
            land Array.unsafe_get values (pd + q)));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (pa + q + 1)
         land Array.unsafe_get values (pb + q + 1)
        lor (Array.unsafe_get values (pc + q + 1)
            land Array.unsafe_get values (pd + q + 1)));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (pa + q + 2)
         land Array.unsafe_get values (pb + q + 2)
        lor (Array.unsafe_get values (pc + q + 2)
            land Array.unsafe_get values (pd + q + 2)));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (pa + q + 3)
         land Array.unsafe_get values (pb + q + 3)
        lor (Array.unsafe_get values (pc + q + 3)
            land Array.unsafe_get values (pd + q + 3)));
      w := q + 4
    done
  done;
  let dst = kn.orand_dst and a = kn.orand_a and b = kn.orand_b
  and c = kn.orand_c in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (pa + q)
         land Array.unsafe_get values (pb + q)
        lor Array.unsafe_get values (pc + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (pa + q + 1)
         land Array.unsafe_get values (pb + q + 1)
        lor Array.unsafe_get values (pc + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (pa + q + 2)
         land Array.unsafe_get values (pb + q + 2)
        lor Array.unsafe_get values (pc + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (pa + q + 3)
         land Array.unsafe_get values (pb + q + 3)
        lor Array.unsafe_get values (pc + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.xor3_dst and a = kn.xor3_a and b = kn.xor3_b and c = kn.xor3_c in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q)
        (Array.unsafe_get values (pa + q)
        lxor Array.unsafe_get values (pb + q)
        lxor Array.unsafe_get values (pc + q));
      Array.unsafe_set values (d + q + 1)
        (Array.unsafe_get values (pa + q + 1)
        lxor Array.unsafe_get values (pb + q + 1)
        lxor Array.unsafe_get values (pc + q + 1));
      Array.unsafe_set values (d + q + 2)
        (Array.unsafe_get values (pa + q + 2)
        lxor Array.unsafe_get values (pb + q + 2)
        lxor Array.unsafe_get values (pc + q + 2));
      Array.unsafe_set values (d + q + 3)
        (Array.unsafe_get values (pa + q + 3)
        lxor Array.unsafe_get values (pb + q + 3)
        lxor Array.unsafe_get values (pc + q + 3));
      w := q + 4
    done
  done;
  let dst = kn.out_dst and src = kn.out_src in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
    let w = ref 0 in
    while !w < k do
      let q = !w in
      Array.unsafe_set values (d + q) (Array.unsafe_get values (s + q));
      Array.unsafe_set values (d + q + 1) (Array.unsafe_get values (s + q + 1));
      Array.unsafe_set values (d + q + 2) (Array.unsafe_get values (s + q + 2));
      Array.unsafe_set values (d + q + 3) (Array.unsafe_get values (s + q + 3));
      w := q + 4
    done
  done

(* ------------------------------------------------------------------ *)
(* Ungated settle, any k: plain [for w] inner loops.                   *)

let settle_block_gen values k (kn : Kernel.kernel) =
  let km1 = k - 1 in
  let dst = kn.inv_dst and src = kn.inv_src in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (lnot (Array.unsafe_get values (s + w)) land lane_mask)
    done
  done;
  let dst = kn.and_dst and s0 = kn.and_s0 and s1 = kn.and_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (a + w) land Array.unsafe_get values (b + w))
    done
  done;
  let dst = kn.or_dst and s0 = kn.or_s0 and s1 = kn.or_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (a + w) lor Array.unsafe_get values (b + w))
    done
  done;
  let dst = kn.xor_dst and s0 = kn.xor_s0 and s1 = kn.xor_s1 in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and a = Array.unsafe_get s0 j
    and b = Array.unsafe_get s1 j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (a + w) lxor Array.unsafe_get values (b + w))
    done
  done;
  let dst = kn.andor_dst and a = kn.andor_a and b = kn.andor_b
  and c = kn.andor_c and d4 = kn.andor_d in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j
    and pd = Array.unsafe_get d4 j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (pa + w)
         land Array.unsafe_get values (pb + w)
        lor (Array.unsafe_get values (pc + w)
            land Array.unsafe_get values (pd + w)))
    done
  done;
  let dst = kn.orand_dst and a = kn.orand_a and b = kn.orand_b
  and c = kn.orand_c in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (pa + w)
         land Array.unsafe_get values (pb + w)
        lor Array.unsafe_get values (pc + w))
    done
  done;
  let dst = kn.xor3_dst and a = kn.xor3_a and b = kn.xor3_b and c = kn.xor3_c in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j
    and pa = Array.unsafe_get a j
    and pb = Array.unsafe_get b j
    and pc = Array.unsafe_get c j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w)
        (Array.unsafe_get values (pa + w)
        lxor Array.unsafe_get values (pb + w)
        lxor Array.unsafe_get values (pc + w))
    done
  done;
  let dst = kn.out_dst and src = kn.out_src in
  for j = 0 to Array.length dst - 1 do
    let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
    for w = 0 to km1 do
      Array.unsafe_set values (d + w) (Array.unsafe_get values (s + w))
    done
  done

(* ------------------------------------------------------------------ *)
(* Gated settle, detecting run: change-detect each gate's K-word result
   and mark its reader blocks and dff sink clusters.  Slightly more work
   per evaluated gate than the ungated loops (one extra load and an xor
   per word) — the payoff is the blocks never entered.  Returns whether
   any gate in the block changed, feeding the hot/detect adaptation.   *)

let settle_block_detect t (kn : Kernel.kernel) (pk : Kernel.kernel) =
  let values = t.values and k = t.k in
  let km1 = k - 1 in
  let changed = ref false in
  let dst = kn.inv_dst and src = kn.inv_src and dst_u = pk.inv_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv = lnot (Array.unsafe_get values (s + w)) land lane_mask in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_comp t (Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.and_dst and s0 = kn.and_s0 and s1 = kn.and_s1
      and dst_u = pk.and_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and a = Array.unsafe_get s0 j
        and b = Array.unsafe_get s1 j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (a + w) land Array.unsafe_get values (b + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_comp t (Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.or_dst and s0 = kn.or_s0 and s1 = kn.or_s1
      and dst_u = pk.or_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and a = Array.unsafe_get s0 j
        and b = Array.unsafe_get s1 j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (a + w) lor Array.unsafe_get values (b + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_comp t (Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.xor_dst and s0 = kn.xor_s0 and s1 = kn.xor_s1
      and dst_u = pk.xor_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and a = Array.unsafe_get s0 j
        and b = Array.unsafe_get s1 j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (a + w) lxor Array.unsafe_get values (b + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_comp t (Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.andor_dst and a = kn.andor_a and b = kn.andor_b
      and c = kn.andor_c and d4 = kn.andor_d and dst_u = pk.andor_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and pa = Array.unsafe_get a j
        and pb = Array.unsafe_get b j
        and pc = Array.unsafe_get c j
        and pd = Array.unsafe_get d4 j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (pa + w)
             land Array.unsafe_get values (pb + w)
            lor (Array.unsafe_get values (pc + w)
                land Array.unsafe_get values (pd + w))
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_comp t (Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.orand_dst and a = kn.orand_a and b = kn.orand_b
      and c = kn.orand_c and dst_u = pk.orand_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and pa = Array.unsafe_get a j
        and pb = Array.unsafe_get b j
        and pc = Array.unsafe_get c j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (pa + w)
             land Array.unsafe_get values (pb + w)
            lor Array.unsafe_get values (pc + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_comp t (Array.unsafe_get dst_u j)
        end
      done;
      let dst = kn.xor3_dst and a = kn.xor3_a and b = kn.xor3_b
      and c = kn.xor3_c and dst_u = pk.xor3_dst in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j
        and pa = Array.unsafe_get a j
        and pb = Array.unsafe_get b j
        and pc = Array.unsafe_get c j in
        let diff = ref 0 in
        for w = 0 to km1 do
          let old = Array.unsafe_get values (d + w) in
          let nv =
            Array.unsafe_get values (pa + w)
            lxor Array.unsafe_get values (pb + w)
            lxor Array.unsafe_get values (pc + w)
          in
          diff := !diff lor (old lxor nv);
          Array.unsafe_set values (d + w) nv
        done;
        if !diff <> 0 then begin
          changed := true;
          mark_comp t (Array.unsafe_get dst_u j)
        end
      done;
      (* outports have no consumer ranks: plain copies, no detection *)
      let dst = kn.out_dst and src = kn.out_src in
      for j = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst j and s = Array.unsafe_get src j in
        for w = 0 to km1 do
          Array.unsafe_set values (d + w) (Array.unsafe_get values (s + w))
        done
      done;
      !changed

(* One block through the plain (undetected) kernels: the C stub when
   the engine was created with [~simd:true], else the k-dispatched
   OCaml loops. *)
let run_plain_block t (kn : Kernel.kernel) b =
  if t.simd then Simd.settle_block t.values t.simd_desc.(b)
  else if t.k = 1 then settle_block_k1 t.values kn
  else if t.k land 3 = 0 then settle_block_quad t.values t.k kn
  else settle_block_gen t.values t.k kn

(* Gated settle: run only dirty blocks, ascending (consumer blocks are
   always at strictly higher ranks, so one sweep reaches the whole
   active cone); hot blocks take the fast ungated loops and mark their
   whole consumer union, detecting blocks pay for precision and drive
   the mode transitions.  Forces are applied at the same rank-boundary
   slots as the ungated engine, change-detected.  A fully-quiescent
   unforced engine exits after one scan of the bitset words. *)
let settle_gated t =
  t.last_marked <- -1;
  let dirty = t.block_dirty in
  let slots = t.force_slots in
  let forced = Array.length slots > 0 in
  if forced || any_bit dirty then begin
    let blocks = t.blocks_s and pblocks = t.prog.Kernel.blocks in
    let rfb = t.prog.Kernel.rank_first_block in
    let modes = t.block_mode and streaks = t.block_streak in
    let hot_after = t.prog.Kernel.tuning.Kernel.hot_after in
    let probe_period = t.prog.Kernel.tuning.Kernel.probe_period in
    if forced then begin
      mark_force_own t;
      apply_forces_detect t (Array.unsafe_get slots 0)
    end;
    for lvl = 0 to Array.length rfb - 2 do
      for b = Array.unsafe_get rfb lvl to Array.unsafe_get rfb (lvl + 1) - 1 do
        if bit_test dirty b then begin
          bit_clear dirty b;
          let kn : Kernel.kernel = Array.unsafe_get blocks b in
          let mode = Array.unsafe_get modes b in
          if mode > 0 then begin
            Array.unsafe_set modes b (mode - 1);
            (* leaving hot mode: seed the streak so a single changed
               probe run re-arms a recently-hot block, instead of
               paying [hot_after] detect-mode runs per probe *)
            if mode = 1 then Array.unsafe_set streaks b (hot_after - 1);
            run_plain_block t kn b;
            or_mask dirty (Array.unsafe_get t.block_consumers b);
            or_mask t.dff_dirty (Array.unsafe_get t.block_dff_sinks b)
          end
          else if settle_block_detect t kn (Array.unsafe_get pblocks b) then begin
            let s = Array.unsafe_get streaks b + 1 in
            if s >= hot_after then begin
              Array.unsafe_set streaks b 0;
              Array.unsafe_set modes b probe_period
            end
            else Array.unsafe_set streaks b s
          end
          else Array.unsafe_set streaks b 0
        end
      done;
      if forced then apply_forces_detect t (Array.unsafe_get slots (lvl + 1))
    done
  end

let settle t =
  if t.gating then settle_gated t
  else begin
    let values = t.values and k = t.k in
    let blocks = t.blocks_s in
    let rfb = t.prog.Kernel.rank_first_block in
    let slots = t.force_slots in
    let forced = Array.length slots > 0 in
    if forced then apply_forces t (Array.unsafe_get slots 0);
    for lvl = 0 to Array.length rfb - 2 do
      let b0 = Array.unsafe_get rfb lvl
      and b1 = Array.unsafe_get rfb (lvl + 1) - 1 in
      if t.simd then
        for b = b0 to b1 do
          Simd.settle_block values t.simd_desc.(b)
        done
      else if k = 1 then
        for b = b0 to b1 do
          settle_block_k1 values (Array.unsafe_get blocks b)
        done
      else if k land 3 = 0 then
        for b = b0 to b1 do
          settle_block_quad values k (Array.unsafe_get blocks b)
        done
      else
        for b = b0 to b1 do
          settle_block_gen values k (Array.unsafe_get blocks b)
        done;
      if forced then apply_forces t (Array.unsafe_get slots (lvl + 1))
    done
  end

(* Gated tick: latch only dirty dff clusters.  The dirty bits are
   snapshotted (and cleared) up front, then the staged copy runs in two
   passes over the snapshot — pass 2's writes mark sink clusters for
   the *next* tick without disturbing the snapshot, and dff-chain reads
   in pass 1 still see every pre-tick value whatever the cluster
   order. *)
let tick_gated t =
  t.last_marked <- -1;
  let values = t.values and next = t.dff_next and k = t.k in
  let km1 = k - 1 in
  let dffs = t.dffs_s and src = t.dff_src_s in
  let n = Array.length dffs in
  let cpd = t.prog.Kernel.dffs_per_cluster in
  let dd = t.dff_dirty in
  let snap = t.cluster_scratch in
  let nsnap = ref 0 in
  for wi = 0 to Array.length dd - 1 do
    let word = Array.unsafe_get dd wi in
    if word <> 0 then begin
      Array.unsafe_set dd wi 0;
      for bit = 0 to 31 do
        if word land (1 lsl bit) <> 0 then begin
          Array.unsafe_set snap !nsnap ((wi lsl 5) lor bit);
          incr nsnap
        end
      done
    end
  done;
  for x = 0 to !nsnap - 1 do
    let cl = Array.unsafe_get snap x in
    let lo = cl * cpd in
    let hi = min n (lo + cpd) - 1 in
    for j = lo to hi do
      let s = Array.unsafe_get src j and base = j * k in
      for w = 0 to km1 do
        Array.unsafe_set next (base + w) (Array.unsafe_get values (s + w))
      done
    done
  done;
  for x = 0 to !nsnap - 1 do
    let cl = Array.unsafe_get snap x in
    let lo = cl * cpd in
    let hi = min n (lo + cpd) - 1 in
    let cl_diff = ref 0 in
    for j = lo to hi do
      let d = Array.unsafe_get dffs j and base = j * k in
      for w = 0 to km1 do
        let old = Array.unsafe_get values (d + w) in
        let nv = Array.unsafe_get next (base + w) in
        cl_diff := !cl_diff lor (old lxor nv);
        Array.unsafe_set values (d + w) nv
      done
    done;
    if !cl_diff <> 0 then begin
      or_mask t.block_dirty t.cluster_consumers.(cl);
      or_mask t.dff_dirty t.cluster_sinks.(cl)
    end
  done;
  t.cycle <- t.cycle + 1

let tick t =
  if t.gating then tick_gated t
  else begin
    let values = t.values and next = t.dff_next and k = t.k in
    let km1 = k - 1 in
    let dffs = t.dffs_s and src = t.dff_src_s in
    let n = Array.length dffs in
    for j = 0 to n - 1 do
      let s = Array.unsafe_get src j and base = j * k in
      for w = 0 to km1 do
        Array.unsafe_set next (base + w) (Array.unsafe_get values (s + w))
      done
    done;
    for j = 0 to n - 1 do
      let d = Array.unsafe_get dffs j and base = j * k in
      for w = 0 to km1 do
        Array.unsafe_set values (d + w) (Array.unsafe_get next (base + w))
      done
    done;
    t.cycle <- t.cycle + 1
  end

let step t =
  settle t;
  tick t

let run_packed t ~inputs ~cycles =
  reset t;
  let rows = ref [] in
  for c = 0 to cycles - 1 do
    List.iter
      (fun (name, vals) ->
        let value = match List.nth_opt vals c with Some w -> w | None -> 0 in
        let comp = input_comp "Slab.run_packed" t name in
        for w = 0 to t.k - 1 do
          write_word t comp w value
        done)
      inputs;
    settle t;
    rows := outputs t :: !rows;
    tick t
  done;
  List.rev !rows

let run_vectors t vectors =
  let nvec = Array.length vectors in
  let nl = netlist t in
  let in_ports = Array.of_list nl.Netlist.inputs in
  let out_ports = Array.of_list nl.Netlist.outputs in
  let nin = Array.length in_ports and nout = Array.length out_ports in
  Array.iter
    (fun v ->
      if Array.length v <> nin then
        invalid_arg "Slab.run_vectors: vector arity mismatch")
    vectors;
  let per_pass = lanes t in
  let results = Array.make nvec [||] in
  let npasses = (nvec + per_pass - 1) / per_pass in
  for p = 0 to npasses - 1 do
    let base = p * per_pass in
    let count = min per_pass (nvec - base) in
    reset t;
    for j = 0 to nin - 1 do
      let comp = snd in_ports.(j) in
      for w = 0 to t.k - 1 do
        let word = ref 0 in
        let lo = w * lanes_per_word in
        let hi = min (lo + lanes_per_word) count in
        for l = lo to hi - 1 do
          if vectors.(base + l).(j) then word := !word lor (1 lsl (l - lo))
        done;
        write_word t comp w !word
      done
    done;
    settle t;
    let out_words =
      Array.map
        (fun (_, i) -> Array.init t.k (fun w -> t.values.((i * t.k) + w)))
        out_ports
    in
    for l = 0 to count - 1 do
      let w = l / lanes_per_word and bit = l mod lanes_per_word in
      results.(base + l) <-
        Array.init nout (fun j -> Packed.lane out_words.(j).(w) bit)
    done
  done;
  results

let engine ?(gating = false) ?(simd = false) ?tuning kk : (module Engine_intf.S)
    =
  if kk < 1 then invalid_arg "Slab.engine: k must be >= 1";
  (module struct
    type nonrec t = t

    let name =
      Printf.sprintf "slab(k=%d%s%s%s)" kk
        (if gating then ",gated" else "")
        (if simd then ",simd" else "")
        (match tuning with
        | Some tu when tu <> Kernel.default_tuning ->
          "," ^ Kernel.tuning_to_spec tu
        | _ -> "")

    let create ?optimize ?relayout ?fuse ?certify nl =
      create ~k:kk ~gating ~simd ?tuning ?optimize ?relayout ?fuse ?certify nl

    let words = words
    let replicate = replicate
    let reset = reset
    let set_input_word = set_input_word
    let set_input_lane = set_input_lane
    let settle = settle
    let tick = tick
    let step = step
    let output_word = output_word
    let output_lane = output_lane
    let peek_word = peek_word
    let poke_word = poke_word
    let cycle = cycle
    let netlist = netlist
  end)
