(* Simulation driver (paper section 6.4).

   "Hydra provides a set of tools for defining simulation drivers... it
   takes the machine language program to be executed, generates the
   control signals needed to load it into memory via direct memory access
   I/O (DMA), it starts the machine, and it formats the various control
   and datapath outputs."

   Two memory configurations:
   - [run_structural]: the whole system, gate-level RAM included, runs in
     the stream semantics; the program is loaded through the DMA circuit.
   - [run_behavioural]: the processor core runs at gate level; the memory
     is an OCaml array driven through the exposed memory bus.  This is the
     substitution for a full 64K-word gate-level RAM (see DESIGN.md) and
     lets long programs run quickly. *)

module S = Hydra_core.Stream_sim
module Bitvec = Hydra_core.Bitvec
module Sys_c = System.Make (S)

type trace_entry = {
  cycle : int;
  state : string;
  pc : int;
  ir : int;
  ad : int;
  r : int;
  a : int;
  b : int;
  ma : int;
  indat : int;
}

type result = {
  trace : trace_entry list;
  events : Golden.event list;  (* reg/mem writes and jumps, in order *)
  cycles : int;                (* cycles from start pulse to halt *)
  halted : bool;
}

let word_of_int = Bitvec.of_int ~width:Isa.word_size

(* Observation plumbing: evaluate a word of signals at a cycle. *)
let word_at t ws = Bitvec.to_int (List.map (fun s -> S.at s t) ws)

let state_name_at t states =
  match
    List.find_opt (fun (_, s) -> S.at s t) states
  with
  | Some (n, _) -> n
  | None -> "-"

let trace_fmt e =
  Printf.sprintf "%4d  %-13s pc=%04x ir=%04x ad=%04x r=%04x a=%04x b=%04x"
    e.cycle e.state e.pc e.ir e.ad e.r e.a e.b

(* Shared per-cycle observation. *)
let observe (outs : Sys_c.outputs) t =
  let dp = outs.Sys_c.dp in
  {
    cycle = t;
    state = state_name_at t outs.Sys_c.control.Sys_c.CC.states;
    pc = word_at t dp.Sys_c.D.pc;
    ir = word_at t dp.Sys_c.D.ir;
    ad = word_at t dp.Sys_c.D.ad;
    r = word_at t dp.Sys_c.D.r;
    a = word_at t dp.Sys_c.D.a;
    b = word_at t dp.Sys_c.D.b;
    ma = word_at t dp.Sys_c.D.ma;
    indat = word_at t outs.Sys_c.mem_rdata;
  }

let events_at (outs : Sys_c.outputs) ~dma_active t =
  let dp = outs.Sys_c.dp in
  let ctl c = S.at (outs.Sys_c.control.Sys_c.CC.ctl c) t in
  let evs = ref [] in
  if not (dma_active t) then begin
    if ctl Control.Rf_ld then
      evs :=
        Golden.Reg_write
          { reg = word_at t dp.Sys_c.D.ir_d; value = word_at t dp.Sys_c.D.p }
        :: !evs;
    if ctl Control.Sto then
      evs :=
        Golden.Mem_write
          { addr = word_at t dp.Sys_c.D.ma; value = word_at t dp.Sys_c.D.a }
        :: !evs;
    (* a taken jump: pc loaded outside the fetch/rx-fetch states *)
    let state = state_name_at t outs.Sys_c.control.Sys_c.CC.states in
    if
      ctl Control.Pc_ld
      && (state = "st_jump1" || state = "st_jumpf1" || state = "st_jumpt1")
    then
      evs := Golden.Jump_taken { target = word_at t dp.Sys_c.D.r } :: !evs
  end;
  List.rev !evs

(* Run with the gate-level RAM: [mem_bits] address bits.  The program is
   DMA-loaded into addresses 0.., then [start] pulses. *)
let run_structural ?(mem_bits = 6) ?(max_cycles = 2000) ?(collect_trace = true)
    program =
  if List.length program > 1 lsl mem_bits then
    invalid_arg "Driver.run_structural: program does not fit in memory";
  S.reset ();
  let prog = Array.of_list program in
  let load_cycles = Array.length prog in
  let dma_active t = t < load_cycles in
  let start = S.input (fun t -> t = load_cycles) in
  let dma = S.input dma_active in
  let dma_a =
    List.init Isa.word_size (fun bit ->
        S.input (fun t ->
            if dma_active t then List.nth (word_of_int t) bit else false))
  in
  let dma_d =
    List.init Isa.word_size (fun bit ->
        S.input (fun t ->
            if dma_active t then List.nth (word_of_int prog.(t)) bit else false))
  in
  let outs = Sys_c.system ~mem_bits { Sys_c.start; dma; dma_a; dma_d } in
  let trace = ref [] and events = ref [] in
  let halted = ref false in
  let t = ref 0 in
  let total = ref 0 in
  while (not !halted) && !t < max_cycles + load_cycles do
    ignore (S.run_cycle [ outs.Sys_c.halted ] !t);
    if collect_trace && not (dma_active !t) then
      trace := observe outs !t :: !trace;
    events := List.rev_append (events_at outs ~dma_active !t) !events;
    if S.at outs.Sys_c.halted !t then halted := true;
    incr t
  done;
  total := !t - load_cycles - 1 (* cycles after the start pulse *);
  {
    trace = List.rev !trace;
    events = List.rev (if !halted then Golden.Halted :: !events else !events);
    cycles = max 0 !total;
    halted = !halted;
  }

(* Run with behavioural memory: the core is gate level; memory reads come
   from an OCaml array and writes observed on the bus update it at the end
   of each cycle. *)
let run_behavioural ?(mem_words = 65536) ?(max_cycles = 100_000)
    ?(collect_trace = true) program =
  S.reset ();
  let mem = Array.make mem_words 0 in
  List.iteri (fun i w -> mem.(i) <- w land 0xffff) program;
  let start = S.input (fun t -> t = 0) in
  let dma = S.input (fun _ -> false) in
  let zero_word = List.init Isa.word_size (fun _ -> S.zero) in
  (* indat: combinational read of the memory array at the current bus
     address.  Reading the address signals from inside the input closure
     is safe: the address derives from register outputs only. *)
  let outs_ref = ref None in
  let indat =
    List.init Isa.word_size (fun bit ->
        S.input (fun t ->
            match !outs_ref with
            | None -> false
            | Some outs ->
              let addr = word_at t outs.Sys_c.mem_addr mod mem_words in
              List.nth (word_of_int mem.(addr)) bit))
  in
  let outs =
    Sys_c.system_external_memory
      { Sys_c.start; dma; dma_a = zero_word; dma_d = zero_word }
      ~indat
  in
  outs_ref := Some outs;
  let trace = ref [] and events = ref [] in
  let halted = ref false in
  let t = ref 0 in
  while (not !halted) && !t < max_cycles do
    ignore (S.run_cycle [ outs.Sys_c.halted ] !t);
    if collect_trace then
      trace := observe outs !t :: !trace;
    events := List.rev_append (events_at outs ~dma_active:(fun _ -> false) !t) !events;
    (* commit the memory write for this cycle *)
    if S.at outs.Sys_c.mem_write !t then begin
      let addr = word_at !t outs.Sys_c.mem_addr mod mem_words in
      mem.(addr) <- word_at !t outs.Sys_c.mem_wdata
    end;
    if S.at outs.Sys_c.halted !t then halted := true;
    incr t
  done;
  {
    trace = List.rev !trace;
    events = List.rev (if !halted then Golden.Halted :: !events else !events);
    cycles = (if !t > 0 then !t - 1 else 0);
    halted = !halted;
  }

(* The structural RAM is internal to the circuit, so final memory (and
   register) contents are reconstructed by replaying the event log over
   the loaded program. *)
let final_memory ~size result ~program =
  let mem = Array.make size 0 in
  List.iteri (fun i w -> if i < size then mem.(i) <- w land 0xffff) program;
  List.iter
    (function
      | Golden.Mem_write { addr; value } -> if addr < size then mem.(addr) <- value
      | Golden.Reg_write _ | Golden.Jump_taken _ | Golden.Halted -> ())
    result.events;
  mem

let final_registers result =
  let regs = Array.make Isa.num_regs 0 in
  List.iter
    (function
      | Golden.Reg_write { reg; value } -> regs.(reg) <- value
      | Golden.Mem_write _ | Golden.Jump_taken _ | Golden.Halted -> ())
    result.events;
  regs

(* Multi-program mode: run many machine-language programs at once on the
   gate-level system netlist, 62 programs per wide pass, passes sharded
   across domains ({!Hydra_engine.Sharded}).  Each lane gets the exact
   input schedule [run_structural] would generate for its program — DMA
   load at addresses 0.., a start pulse at t = program length, then free
   running — so lanes with different program lengths start (and halt)
   independently. *)

let system_netlist ?(mem_bits = 6) () =
  let module G = Hydra_core.Graph in
  let module SysG = System.Make (G) in
  let word n =
    List.init Isa.word_size (fun i -> G.input (Printf.sprintf "%s%d" n i))
  in
  let start = G.input "start" and dma = G.input "dma" in
  let da = word "da" and dd = word "dd" in
  let outs = SysG.system ~mem_bits { SysG.start; dma; dma_a = da; dma_d = dd } in
  Hydra_netlist.Netlist.extract
    ~inputs:([ start; dma ] @ da @ dd)
    ~outputs:
      (("halted", outs.SysG.halted)
      :: List.mapi
           (fun i s -> (Printf.sprintf "pc%d" i, s))
           outs.SysG.dp.SysG.D.pc)

(* The [run_structural] input schedule for one program as per-port bool
   streams over {!system_netlist}'s ports — the stimulus format of
   cycle-driven consumers like [Hydra_verify.Campaign]: DMA load at
   addresses 0.., a start pulse at t = program length, then free running
   for [max_cycles] more cycles. *)
let program_stimulus ?(mem_bits = 6) ?(max_cycles = 2000) program =
  let prog = Array.of_list program in
  let len = Array.length prog in
  if len > 1 lsl mem_bits then
    invalid_arg "Driver.program_stimulus: program does not fit in memory";
  let cycles = len + max_cycles in
  let stream f = List.init cycles f in
  let bit_of w i = List.nth (word_of_int w) i in
  ( ("start", stream (fun t -> t = len))
    :: ("dma", stream (fun t -> t < len))
    :: (List.init Isa.word_size (fun i ->
            (Printf.sprintf "da%d" i, stream (fun t -> t < len && bit_of t i)))
       @ List.init Isa.word_size (fun i ->
             (Printf.sprintf "dd%d" i,
              stream (fun t -> t < len && bit_of prog.(t) i)))),
    cycles )

type batch_result = { halted : bool; cycles : int; pc : int }

let run_many ?(mem_bits = 6) ?(max_cycles = 2000) ?sharded ?domains programs =
  let module W = Hydra_engine.Compiled_wide in
  let module Sh = Hydra_engine.Sharded in
  let module P = Hydra_core.Packed in
  let nprog = Array.length programs in
  let progs = Array.map Array.of_list programs in
  Array.iter
    (fun p ->
      if Array.length p > 1 lsl mem_bits then
        invalid_arg "Driver.run_many: program does not fit in memory")
    progs;
  let sh, owned =
    match sharded with
    | Some sh -> (sh, false)
    | None -> (Sh.create ?domains (system_netlist ~mem_bits ()), true)
  in
  let results = Array.make nprog { halted = false; cycles = 0; pc = 0 } in
  let lanes = W.lanes in
  let npasses = (nprog + lanes - 1) / lanes in
  Sh.dispatch sh npasses (fun sim p ->
      let base = p * lanes in
      let count = min lanes (nprog - base) in
      let lens = Array.init count (fun l -> Array.length progs.(base + l)) in
      let max_len = Array.fold_left max 0 lens in
      let limit = max_len + max_cycles in
      W.reset sim;
      let halted_mask = ref 0 in
      let all = (1 lsl count) - 1 in
      let t = ref 0 in
      while !halted_mask <> all && !t < limit do
        let t0 = !t in
        let start_w = ref 0 and dma_w = ref 0 in
        for l = 0 to count - 1 do
          if t0 = lens.(l) then start_w := !start_w lor (1 lsl l);
          if t0 < lens.(l) then dma_w := !dma_w lor (1 lsl l)
        done;
        W.set_input sim "start" !start_w;
        W.set_input sim "dma" !dma_w;
        (* dma address: the address is [t0] in every still-loading lane
           and 0 elsewhere, so a bit of [da] is the active mask or 0 *)
        List.iteri
          (fun i b ->
            W.set_input sim (Printf.sprintf "da%d" i) (if b then !dma_w else 0))
          (word_of_int t0);
        (* dma data: lane [l] carries its own program's word [t0] *)
        let dd_words = Array.make Isa.word_size 0 in
        for l = 0 to count - 1 do
          if t0 < lens.(l) then
            List.iteri
              (fun i b ->
                if b then dd_words.(i) <- dd_words.(i) lor (1 lsl l))
              (word_of_int progs.(base + l).(t0))
        done;
        Array.iteri
          (fun i w -> W.set_input sim (Printf.sprintf "dd%d" i) w)
          dd_words;
        W.settle sim;
        let newly = W.output sim "halted" land lnot !halted_mask land all in
        if newly <> 0 then begin
          let pc_bits =
            List.init Isa.word_size (fun i ->
                W.output sim (Printf.sprintf "pc%d" i))
          in
          for l = 0 to count - 1 do
            if newly land (1 lsl l) <> 0 then begin
              let pc =
                Bitvec.to_int (List.map (fun w -> P.lane w l) pc_bits)
              in
              results.(base + l) <-
                { halted = true; cycles = t0 - lens.(l); pc }
            end
          done;
          halted_mask := !halted_mask lor newly
        end;
        W.tick sim;
        incr t
      done;
      for l = 0 to count - 1 do
        if !halted_mask land (1 lsl l) = 0 then
          results.(base + l) <-
            { halted = false; cycles = max 0 (!t - 1 - lens.(l)); pc = 0 }
      done);
  if owned then Sh.shutdown sh;
  results
