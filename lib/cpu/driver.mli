(** Simulation driver (paper section 6.4): loads a machine-language
    program via DMA, pulses start, runs the gate-level system in the
    stream semantics, and formats the control/datapath outputs.  Events
    (register writes, memory writes, taken jumps, halt) are extracted in
    {!Golden.event} form so runs can be compared with the golden model
    exactly. *)

type trace_entry = {
  cycle : int;
  state : string;  (** control state name ("-" during DMA) *)
  pc : int;
  ir : int;
  ad : int;
  r : int;
  a : int;
  b : int;
  ma : int;
  indat : int;
}

type result = {
  trace : trace_entry list;
  events : Golden.event list;
  cycles : int;  (** clock cycles from the start pulse to halt *)
  halted : bool;
}

val run_structural :
  ?mem_bits:int ->
  ?max_cycles:int ->
  ?collect_trace:bool ->
  int list ->
  result
(** Whole system at gate level, including a 2{^mem_bits}-word structural
    RAM (default 6); the program is DMA-loaded at address 0. *)

val run_behavioural :
  ?mem_words:int ->
  ?max_cycles:int ->
  ?collect_trace:bool ->
  int list ->
  result
(** Gate-level core with an OCaml-array memory on the exposed bus: the
    documented substitution for a full 64K-word gate-level RAM. *)

val final_registers : result -> int array
(** Register contents reconstructed from the event log. *)

val final_memory : size:int -> result -> program:int list -> int array
(** Memory contents reconstructed by replaying the writes over the loaded
    program. *)

val trace_fmt : trace_entry -> string

(** {1 Multi-program mode} *)

val system_netlist : ?mem_bits:int -> unit -> Hydra_netlist.Netlist.t
(** The whole gate-level system (structural RAM of 2{^mem_bits} words,
    default 6) extracted as a netlist: inputs [start], [dma],
    [da0..da15], [dd0..dd15]; outputs [halted] and [pc0..pc15]. *)

val program_stimulus :
  ?mem_bits:int ->
  ?max_cycles:int ->
  int list ->
  (string * bool list) list * int
(** The {!run_structural} input schedule for one program, rendered as
    per-port bool streams over {!system_netlist}'s input ports (plus the
    total cycle count) — the stimulus format of cycle-driven consumers
    like [Hydra_verify.Campaign]: DMA load at addresses 0.., a start
    pulse at t = program length, then free running for [max_cycles]
    (default 2000) further cycles.  On a fault-free lane, [halted] first
    asserts at cycle [r.cycles + length program] where [r] is
    {!run_structural}'s result. *)

type batch_result = {
  halted : bool;
  cycles : int;  (** clock cycles from the start pulse to halt *)
  pc : int;  (** program counter at the halt cycle (0 if never halted) *)
}

val run_many :
  ?mem_bits:int ->
  ?max_cycles:int ->
  ?sharded:Hydra_engine.Sharded.t ->
  ?domains:int ->
  int list array ->
  batch_result array
(** Run many machine-language programs at once on {!system_netlist}:
    program [k] rides in lane [k mod 62] of sharded job [k / 62], each
    lane driven with exactly the DMA-load / start-pulse schedule
    {!run_structural} would generate for it, so N programs cost
    ceil(N/62) wide simulations spread over the domains.  [?sharded]
    reuses an engine already created from [system_netlist ~mem_bits]
    (and is not shut down); otherwise one is created with [?domains]
    and shut down on return.  [cycles] and [halted] of result [k] match
    {!run_structural} on program [k]. *)
