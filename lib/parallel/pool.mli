(** A reusable domain pool with a chunk-stealing [parallel_for] and a
    long-running [run_team] mode — the substrate for parallel circuit
    simulation (paper section 4.3).

    The calling domain participates in every call, so a pool of size [n]
    spawns [n - 1] worker domains. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of total parallelism [domains]
    (default: [Domain.recommended_domain_count], capped at 8). *)

val size : t -> int
(** Total parallelism, caller included. *)

val parallel_for : ?chunk:int -> t -> int -> int -> (int -> unit) -> unit
(** [parallel_for t lo hi f] runs [f i] for every [lo <= i < hi], possibly
    concurrently, and returns once all are done (a barrier).  [f] must be
    safe to run concurrently for distinct [i].  Small ranges run inline.
    The first exception raised by [f] (if any) is re-raised in the
    caller. *)

val run_team : t -> (int -> unit) -> unit
(** [run_team t f] runs [f member] once for every [0 <= member < size t],
    all concurrently; the caller takes one membership.  This is the
    long-running-task mode used by {!Hydra_engine.Sharded}: each body
    typically owns private state (indexed by its membership) and drains a
    shared work queue, and the only synchronization is the final join.
    [f] must be safe to run concurrently for distinct memberships; a fast
    member may execute more than one membership sequentially.  The first
    exception raised (if any) is re-raised in the caller after the
    join. *)

val parallel_sum : t -> int -> int -> (int -> int) -> int
(** Parallel sum of [f i] over the range, accumulated with per-chunk
    partial sums (O(chunks) auxiliary space). *)

val heartbeat : t -> member:int -> site:string -> unit
(** Stamp member [member]'s heartbeat slot with the current wall clock
    and [site] (a short label of what it is working on — typically the
    claimed job's name).  Lock-free: the slot is owned by its member.
    Out-of-range members are ignored (a body running on a replica index
    beyond the team is harmless). *)

val last_beat : t -> int -> float * string
(** [(time, site)] of the member's last {!heartbeat} ([create] stamps
    every slot, so this never reads uninitialized).  Reads race member
    writes by design; a watchdog tolerates one-update staleness. *)

val shutdown : t -> unit
(** Join all workers.  The pool must not be used afterwards. *)

val default_domains : unit -> int
