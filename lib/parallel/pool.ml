(* A small domain pool with a chunk-stealing parallel-for and a
   long-running team mode.

   This is the substrate for parallel circuit simulation (paper section
   4.3): all gate evaluations within one levelized rank are independent and
   can run simultaneously; the pool provides two primitives over one set of
   reusable worker domains:

   - [parallel_for]: "evaluate these N independent things on all cores"
     with a barrier at the end — fine-grained, used per rank or per chunk.
   - [run_team]: "run one long-lived task body per pool member" — the
     substrate for domain-sharded engines ({!Hydra_engine.Sharded}), where
     each member owns private simulator state and drains a shared work
     queue until it is empty, synchronizing only when the whole team
     finishes.

   Workers are OCaml 5 domains created once and reused across calls
   (domain spawn is far too expensive per simulation cycle).  Work is
   handed out in fixed-size chunks claimed from an atomic counter, so load
   imbalance between gates of different cost evens out.  The calling
   domain participates, so a pool of [n] domains uses [n] cores with
   [n - 1] spawned workers. *)

type job = {
  body : int -> unit;
  hi : int;
  chunk : int;
  next : int Atomic.t;
  mutable pending : int;  (* workers that have not finished this job *)
  exn : exn option Atomic.t;
      (* first exception raised by any chunk; CAS keeps the publication
         race between domains well defined *)
}

type t = {
  size : int;  (* total parallelism including the caller *)
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable job : job option;
  mutable shutdown : bool;
  mutable domains : unit Domain.t list;
  (* Heartbeat slots, one per member: [beat_time.(m)] is the wall-clock
     of member [m]'s last {!heartbeat}, [beat_site.(m)] a short label of
     where it was (typically the job it is working).  Single writer per
     slot (the member itself), racy lock-free readers (the watchdog): a
     torn read can only mis-age a beat by one update, never corrupt. *)
  beat_time : float array;
  beat_site : string array;
}

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

let record_exn job e =
  (* keep the first exception only; losers of the race drop theirs *)
  ignore (Atomic.compare_and_set job.exn None (Some e))

let run_chunks job =
  try
    let rec loop () =
      let lo = Atomic.fetch_and_add job.next job.chunk in
      if lo < job.hi then begin
        let hi = min (lo + job.chunk) job.hi in
        for i = lo to hi - 1 do
          job.body i
        done;
        loop ()
      end
    in
    loop ()
  with e -> record_exn job e

let worker t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.shutdown) && t.generation = !seen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.shutdown then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      run_chunks job;
      Mutex.lock t.mutex;
      job.pending <- job.pending - 1;
      if job.pending = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?domains () =
  let size = match domains with Some n -> max 1 n | None -> default_domains () in
  let t =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      generation = 0;
      job = None;
      shutdown = false;
      domains = [];
      beat_time = Array.make size (Unix.gettimeofday ());
      beat_site = Array.make size "idle";
    }
  in
  t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

(* Heartbeats: members stamp "I am alive, working on [site]" at task
   boundaries; a watchdog compares the stamps against a horizon.  The
   slot is owned by its member, so no lock is taken. *)
let heartbeat t ~member ~site =
  if member >= 0 && member < t.size then begin
    t.beat_site.(member) <- site;
    t.beat_time.(member) <- Unix.gettimeofday ()
  end

let last_beat t member =
  if member < 0 || member >= t.size then
    invalid_arg "Pool.last_beat: member out of range";
  (t.beat_time.(member), t.beat_site.(member))

let shutdown t =
  Mutex.lock t.mutex;
  t.shutdown <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Publish [job] to the workers, participate, wait for the stragglers,
   re-raise the first recorded exception.  Shared by [parallel_for] and
   [run_team]. *)
let run_job t job =
  Mutex.lock t.mutex;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  (* the caller participates *)
  run_chunks job;
  Mutex.lock t.mutex;
  while job.pending > 0 do
    Condition.wait t.work_done t.mutex
  done;
  t.job <- None;
  Mutex.unlock t.mutex;
  match Atomic.get job.exn with Some e -> raise e | None -> ()

(* [parallel_for t lo hi f] runs [f i] for [lo <= i < hi] across the pool;
   returns when every index is done.  Falls back to a plain loop when the
   range is too small to be worth waking the pool. *)
let parallel_for ?(chunk = 0) t lo hi f =
  let n = hi - lo in
  if n <= 0 then ()
  else if t.size = 1 || n < 2 * t.size then
    for i = lo to hi - 1 do
      f i
    done
  else begin
    let chunk =
      if chunk > 0 then chunk else max 1 (n / (4 * t.size))
    in
    run_job t
      {
        body = (fun i -> f (lo + i));
        hi = n;
        chunk;
        next = Atomic.make 0;
        pending = t.size - 1;
        exn = Atomic.make None;
      }
  end

(* [run_team t f] runs [f member] once for every [0 <= member < size t],
   all concurrently (the caller takes one membership, the workers the
   rest).  Unlike [parallel_for] there is no small-range fallback: every
   body is expected to be long-running — typically draining a shared work
   queue with private state — and the only synchronization is the join
   when all members return.  Exceptions: first one wins, re-raised in the
   caller after the join. *)
let run_team t f =
  if t.size = 1 then f 0
  else
    (* one index per member: chunk 1 over exactly [size] indices means
       each claim is one membership; a member that finishes instantly may
       claim a second membership, which is harmless — memberships, not
       domains, own the private state *)
    run_job t
      {
        body = f;
        hi = t.size;
        chunk = 1;
        next = Atomic.make 0;
        pending = t.size - 1;
        exn = Atomic.make None;
      }

(* Convenience: sum of [f i] over a range with per-chunk partial sums —
   O(chunks) auxiliary space, not O(n).  Used by tests and benches. *)
let parallel_sum t lo hi f =
  let n = hi - lo in
  if n <= 0 then 0
  else if t.size = 1 || n < 2 * t.size then begin
    let s = ref 0 in
    for i = lo to hi - 1 do
      s := !s + f i
    done;
    !s
  end
  else begin
    let nchunks = min n (4 * t.size) in
    let partials = Array.make nchunks 0 in
    parallel_for ~chunk:1 t 0 nchunks (fun c ->
        let clo = lo + (c * n / nchunks) and chi = lo + ((c + 1) * n / nchunks) in
        let s = ref 0 in
        for i = clo to chi - 1 do
          s := !s + f i
        done;
        partials.(c) <- !s);
    Array.fold_left ( + ) 0 partials
  end
