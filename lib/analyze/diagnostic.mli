(** Structured lint diagnostics: rule name, severity, involved
    components, an optional ordered witness path, and a message — with
    human and JSON renderers.  The JSON shape is the [hydra lint --json]
    contract and is pinned by a test. *)

type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  components : int list;  (** component indices involved, ascending *)
  witness : string list;  (** ordered path of component labels, may be empty *)
  message : string;
}

val severity_string : severity -> string
val is_error : t -> bool
val to_string : t -> string

val json_string : string -> string
(** An RFC 8259-escaped, quoted JSON string literal. *)

val to_json : t -> string
(** [{"rule":…,"severity":…,"components":[…],"witness":[…],"message":…}] *)

val list_to_json : t list -> string
val count_errors : t list -> int

val to_sarif : ?tool:string -> (string * t list) list -> string
(** SARIF 2.1.0 document (minimal subset: tool driver with a rule table,
    results with ruleId/level/message/logicalLocations) for a list of
    [(target, diagnostics)] pairs; the target name becomes each
    result's logical location.  [Error]/[Warning]/[Info] map to SARIF
    levels [error]/[warning]/[note].  The shape is part of the
    [--sarif] CLI contract and is smoke-tested by a round-trip parse in
    CI. *)
