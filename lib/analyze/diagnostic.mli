(** Structured lint diagnostics: rule name, severity, involved
    components, an optional ordered witness path, and a message — with
    human and JSON renderers.  The JSON shape is the [hydra lint --json]
    contract and is pinned by a test. *)

type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  components : int list;  (** component indices involved, ascending *)
  witness : string list;  (** ordered path of component labels, may be empty *)
  message : string;
}

val severity_string : severity -> string
val is_error : t -> bool
val to_string : t -> string

val json_string : string -> string
(** An RFC 8259-escaped, quoted JSON string literal. *)

val to_json : t -> string
(** [{"rule":…,"severity":…,"components":[…],"witness":[…],"message":…}] *)

val list_to_json : t list -> string
val count_errors : t list -> int
