(* Fixpoint dataflow analyses over netlists.

   A generic worklist (chaotic-iteration) solver plus four client
   analyses, all phrased as least fixpoints of monotone transfer
   functions over finite lattices — the classic recipe, instantiated on
   the paper's flat netlist form:

   - sequential constant propagation ({!constants}): ternary values
     under the constant-propagation order (X on top, "not a constant").
     A flip flop's abstract value is the join of its power-up value and
     everything it ever loads, so a known fixpoint value means the
     component provably holds that value at every cycle from reset, for
     every input sequence.  Registers stuck this way are dead state.

   - reaching-X ({!reaching_x}): ternary values under the information
     order (X at the bottom).  Inputs held at 0, flip flops starting at
     X, the least fixpoint is exactly the limit of Xsim's synchronous
     iteration (the per-cycle state sequence ascends the information
     order, so it converges within #dffs ticks); an output that is X in
     the fixpoint depends on power-up state *forever* — a definitive
     verdict where the lint rule's bounded [xsim_cycles] check was only
     suggestive.  {!crosscheck} verifies the two formulations agree.

   - observability ({!observable}): a backward boolean pass.  A
     component is observable when it is an output port or some sink of
     its transmits — and a sink whose own value is a known sequential
     constant transmits nothing.  Live-but-unobservable components are
     masked by constants on every path to an output: removable.

   - equivalence classes ({!classes}): partition refinement.  Flip
     flops start partitioned by power-up value (split further by a
     62-lane random-simulation signature — purely an accelerator, it
     can only make the initial partition finer, never unsound), gates
     get hash-consed structural ids with commutative normalization and
     dff fanin collapsed to its class; classes are re-split by the data
     input's id until stable.  A stable partition is a bisimulation:
     same-class components provably carry equal values at every cycle,
     so duplicates can be merged.

   Soundness of the chaotic iteration: each analysis starts at a
   pre-fixpoint (init ⊑ transfer(init) pointwise) and every transfer is
   monotone, so values only ascend and the loop terminates at the least
   fixpoint above the start, independent of visit order.  Components on
   combinational cycles are frozen at X (the conservative element of
   both ternary orders): recomputing them could descend, and the
   synchronous model forbids them anyway (comb-cycle lints as an
   error).

   Every positive verdict is falsifiable by running the circuit, and
   {!crosscheck} does exactly that against the packed reference
   simulator — an analysis calling a toggling signal constant is a hard
   failure, not a shrug. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module T = Hydra_core.Ternary
module P = Hydra_core.Packed

(* Generic worklist solver ------------------------------------------------ *)

type solve_stats = { visits : int; updates : int }

let solve ?(frozen = fun _ -> false) ~n ~equal ~succs ~transfer ~init () =
  let values = Array.init n init in
  let queued = Array.make n false in
  let q = Queue.create () in
  let push i =
    if not (queued.(i) || frozen i) then begin
      queued.(i) <- true;
      Queue.add i q
    end
  in
  for i = 0 to n - 1 do
    push i
  done;
  let visits = ref 0 and updates = ref 0 in
  while not (Queue.is_empty q) do
    let i = Queue.take q in
    queued.(i) <- false;
    incr visits;
    let v = transfer (fun j -> values.(j)) i in
    if not (equal v values.(i)) then begin
      values.(i) <- v;
      incr updates;
      List.iter push (succs i)
    end
  done;
  (values, { visits = !visits; updates = !updates })

(* Analysis state --------------------------------------------------------- *)

type t = {
  nl : Netlist.t;
  lv : Levelize.t;
  fanout : (int * int) list array;
  cyclic : bool array;
  mutable constants_ : (T.t array * solve_stats) option;
  mutable reaching_ : (T.t array * solve_stats) option;
  mutable observable_ : (bool array * solve_stats) option;
  mutable classes_ : int list list option;
}

let create nl =
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Dataflow.create: malformed netlist: " ^ reason));
  let lv = Levelize.compute nl in
  let cyclic = Array.make (Netlist.size nl) false in
  List.iter (fun i -> cyclic.(i) <- true) lv.Levelize.cyclic;
  {
    nl;
    lv;
    fanout = Netlist.fanout nl;
    cyclic;
    constants_ = None;
    reaching_ = None;
    observable_ = None;
    classes_ = None;
  }

let netlist t = t.nl
let label t i = Netlist.describe t.nl i
let forward_succs t i = List.map fst t.fanout.(i)

(* Sequential constant propagation ---------------------------------------- *)

let constants_full t =
  match t.constants_ with
  | Some r -> r
  | None ->
    let nl = t.nl in
    let n = Netlist.size nl in
    (* start: the cycle-0 settle from reset (inputs unknown, flip flops
       at their power-up values) — a pre-fixpoint of the transfer, since
       a dff's transfer joins its power-up value back in *)
    let init = Sim.ternary_values ~inputs:T.X ~respect_init:true ~cycles:0 nl in
    let transfer get i =
      match nl.Netlist.components.(i) with
      | Netlist.Inport _ -> T.X
      | Netlist.Constant b -> T.of_bool b
      | Netlist.Dffc b -> T.join (T.of_bool b) (get nl.Netlist.fanin.(i).(0))
      | c -> (
        match Sim.ternary_gate c (fun k -> get nl.Netlist.fanin.(i).(k)) with
        | Some v -> v
        | None -> assert false)
    in
    let r =
      solve
        ~frozen:(fun i -> t.cyclic.(i))
        ~n ~equal:( = ) ~succs:(forward_succs t) ~transfer
        ~init:(fun i -> init.(i))
        ()
    in
    t.constants_ <- Some r;
    r

let constants t = fst (constants_full t)

let stuck_registers t =
  let consts = constants t in
  let out = ref [] in
  Array.iteri
    (fun i c ->
      match c with
      | Netlist.Dffc _ -> (
        match T.to_bool consts.(i) with
        | Some b -> out := (i, b) :: !out
        | None -> ())
      | _ -> ())
    t.nl.Netlist.components;
  List.rev !out

let constant_components t =
  let consts = constants t in
  let out = ref [] in
  Array.iteri
    (fun i c ->
      match c with
      | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
      | Netlist.Dffc _ -> (
        match T.to_bool consts.(i) with
        | Some b -> out := (i, b) :: !out
        | None -> ())
      | _ -> ())
    t.nl.Netlist.components;
  List.rev !out

(* Reaching-X ------------------------------------------------------------- *)

let reaching_full t =
  match t.reaching_ with
  | Some r -> r
  | None ->
    let nl = t.nl in
    let n = Netlist.size nl in
    let init i =
      match nl.Netlist.components.(i) with
      | Netlist.Inport _ -> T.F
      | Netlist.Constant b -> T.of_bool b
      | _ -> T.X
    in
    let transfer get i =
      match nl.Netlist.components.(i) with
      | Netlist.Inport _ -> T.F
      | Netlist.Constant b -> T.of_bool b
      | Netlist.Dffc _ -> get nl.Netlist.fanin.(i).(0)
      | c -> (
        match Sim.ternary_gate c (fun k -> get nl.Netlist.fanin.(i).(k)) with
        | Some v -> v
        | None -> assert false)
    in
    let r =
      solve
        ~frozen:(fun i -> t.cyclic.(i))
        ~n ~equal:( = ) ~succs:(forward_succs t) ~transfer ~init ()
    in
    t.reaching_ <- Some r;
    r

let reaching_x t = fst (reaching_full t)

let reaching_x_outputs t =
  let r = reaching_x t in
  List.filter_map
    (fun (name, i) -> if r.(i) = T.X then Some name else None)
    t.nl.Netlist.outputs

(* Backward observability ------------------------------------------------- *)

let observable_full t =
  match t.observable_ with
  | Some r -> r
  | None ->
    let consts = constants t in
    let nl = t.nl in
    let n = Netlist.size nl in
    let is_outport i =
      match nl.Netlist.components.(i) with
      | Netlist.Outport _ -> true
      | _ -> false
    in
    (* a sink whose own value is a known sequential constant transmits
       nothing: whatever its fanin does, its output never moves *)
    let transmits j = not (T.is_known consts.(j)) in
    let transfer get i =
      is_outport i || List.exists (fun (j, _) -> transmits j && get j) t.fanout.(i)
    in
    let r =
      solve ~n ~equal:Bool.equal
        ~succs:(fun i -> Array.to_list nl.Netlist.fanin.(i))
        ~transfer ~init:is_outport ()
    in
    t.observable_ <- Some r;
    r

let observable t = fst (observable_full t)

let masked t =
  let nl = t.nl in
  let n = Netlist.size nl in
  (* structural liveness, so we don't re-report plain dead-logic *)
  let live = Array.make n false in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter mark nl.Netlist.fanin.(i)
    end
  in
  List.iter (fun (_, i) -> mark i) nl.Netlist.outputs;
  let obs = observable t in
  let consts = constants t in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match nl.Netlist.components.(i) with
    | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
    | Netlist.Dffc _ ->
      if live.(i) && (not obs.(i)) && not (T.is_known consts.(i)) then
        out := i :: !out
    | _ -> ()
  done;
  !out

(* Equivalence classes ---------------------------------------------------- *)

(* Structural keys for one hash-consing round: gates by operator and
   (commutatively normalized) child ids, flip flops by their current
   partition class, known sequential constants collapse onto the
   matching constant, everything unmergeable (ports, components on
   combinational cycles) gets a unique key. *)
type key =
  | KConst of bool
  | KUniq of int
  | KDff of int
  | KInv of int
  | KAnd of int * int
  | KOr of int * int
  | KXor of int * int

let signatures t =
  let nl = t.nl in
  let n = Netlist.size nl in
  let s = Sim.packed_create nl in
  let st = Random.State.make [| 0xC1A5; n |] in
  Sim.packed_reset s;
  let h = Array.make n 0 in
  for _ = 1 to 16 do
    List.iter
      (fun (nm, _) -> Sim.packed_set_input s nm (P.random_word st))
      nl.Netlist.inputs;
    Sim.packed_settle s;
    for i = 0 to n - 1 do
      h.(i) <- (h.(i) * 31) + Sim.packed_value s i
    done;
    Sim.packed_tick s
  done;
  h

let comb_ids t consts dff_class =
  let nl = t.nl in
  let n = Netlist.size nl in
  let ids = Array.make n (-1) in
  let table : (key, int) Hashtbl.t = Hashtbl.create ((2 * n) + 16) in
  let fresh = ref 0 in
  let id_of key =
    match Hashtbl.find_opt table key with
    | Some id -> id
    | None ->
      let id = !fresh in
      incr fresh;
      Hashtbl.add table key id;
      id
  in
  Array.iteri
    (fun i c ->
      if t.cyclic.(i) then ids.(i) <- id_of (KUniq i)
      else
        match T.to_bool consts.(i) with
        | Some b -> ids.(i) <- id_of (KConst b)
        | None -> (
          match c with
          | Netlist.Inport _ -> ids.(i) <- id_of (KUniq i)
          | Netlist.Constant b -> ids.(i) <- id_of (KConst b)
          | Netlist.Dffc _ -> ids.(i) <- id_of (KDff dff_class.(i))
          | _ -> ()))
    nl.Netlist.components;
  Array.iter
    (fun i ->
      if ids.(i) < 0 then begin
        let fi k = ids.(nl.Netlist.fanin.(i).(k)) in
        let key =
          match nl.Netlist.components.(i) with
          | Netlist.Invc -> KInv (fi 0)
          | Netlist.And2c ->
            let a = fi 0 and b = fi 1 in
            KAnd (min a b, max a b)
          | Netlist.Or2c ->
            let a = fi 0 and b = fi 1 in
            KOr (min a b, max a b)
          | Netlist.Xor2c ->
            let a = fi 0 and b = fi 1 in
            KXor (min a b, max a b)
          | Netlist.Outport _ -> KUniq i
          | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ ->
            assert false
        in
        ids.(i) <- id_of key
      end)
    t.lv.Levelize.order;
  (* anything levelization didn't order and the source pass didn't key
     stays unmergeable — unique is always sound *)
  for i = 0 to n - 1 do
    if ids.(i) < 0 then ids.(i) <- id_of (KUniq i)
  done;
  ids

let classes t =
  match t.classes_ with
  | Some c -> c
  | None ->
    let nl = t.nl in
    let n = Netlist.size nl in
    let consts = constants t in
    let sigs = if t.lv.Levelize.cyclic = [] then Some (signatures t) else None in
    (* initial partition: power-up value, split by random signature *)
    let cls = Array.make n (-1) in
    let table = Hashtbl.create 16 in
    let count = ref 0 in
    Array.iteri
      (fun i c ->
        match c with
        | Netlist.Dffc b ->
          let key = (b, match sigs with Some h -> h.(i) | None -> 0) in
          cls.(i) <-
            (match Hashtbl.find_opt table key with
            | Some k -> k
            | None ->
              let k = !count in
              incr count;
              Hashtbl.add table key k;
              k)
        | _ -> ())
      nl.Netlist.components;
    (* refine by the data input's structural id until stable; keys
       include the old class, so blocks only ever split, and an
       unchanged count means an unchanged partition *)
    let rec refine cls count =
      let ids = comb_ids t consts cls in
      let table = Hashtbl.create 16 in
      let fresh = ref 0 in
      let cls' = Array.make n (-1) in
      Array.iteri
        (fun i c ->
          match c with
          | Netlist.Dffc _ ->
            let key = (cls.(i), ids.(nl.Netlist.fanin.(i).(0))) in
            cls'.(i) <-
              (match Hashtbl.find_opt table key with
              | Some k -> k
              | None ->
                let k = !fresh in
                incr fresh;
                Hashtbl.add table key k;
                k)
          | _ -> ())
        nl.Netlist.components;
      if !fresh = count then ids else refine cls' !fresh
    in
    let ids = refine cls !count in
    let groups : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun i c ->
        let mergeable =
          match c with
          | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
          | Netlist.Dffc _ ->
            true
          | _ -> false
        in
        if mergeable && (not t.cyclic.(i)) && not (T.is_known consts.(i)) then
          let prev =
            match Hashtbl.find_opt groups ids.(i) with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace groups ids.(i) (i :: prev))
      nl.Netlist.components;
    let out =
      Hashtbl.fold
        (fun _ members acc ->
          match members with
          | _ :: _ :: _ -> List.rev members :: acc
          | _ -> acc)
        groups []
    in
    let out = List.sort compare out in
    t.classes_ <- Some out;
    out

(* Stats ------------------------------------------------------------------ *)

let stats t =
  [
    ("constants", snd (constants_full t));
    ("observable", snd (observable_full t));
    ("reaching-x", snd (reaching_full t));
  ]

(* Diagnostics ------------------------------------------------------------ *)

let take8 l = List.filteri (fun k _ -> k < 8) l

let diagnostics t =
  let ds = ref [] in
  (match stuck_registers t with
  | [] -> ()
  | stuck ->
    let witness =
      take8
        (List.map
           (fun (i, b) ->
             Printf.sprintf "%s=%c" (label t i) (if b then '1' else '0'))
           stuck)
    in
    ds :=
      {
        Diagnostic.rule = "stuck-register";
        severity = Diagnostic.Warning;
        components = List.map fst stuck;
        witness;
        message =
          Printf.sprintf
            "%d flip flop(s) provably hold their power-up value forever \
             (sequential constant from reset)"
            (List.length stuck);
      }
      :: !ds);
  (match masked t with
  | [] -> ()
  | m ->
    ds :=
      {
        Diagnostic.rule = "unobservable-logic";
        severity = Diagnostic.Warning;
        components = m;
        witness = take8 (List.map (label t) m);
        message =
          Printf.sprintf
            "%d component(s) reach output ports only through \
             constant-masked paths (never observable)"
            (List.length m);
      }
      :: !ds);
  (match classes t with
  | [] -> ()
  | cls ->
    let dup = List.concat_map List.tl cls in
    let witness =
      take8
        (List.map
           (fun c ->
             match c with
             | rep :: next :: _ ->
               Printf.sprintf "%s = %s" (label t next) (label t rep)
             | _ -> assert false)
           cls)
    in
    ds :=
      {
        Diagnostic.rule = "redundant-logic";
        severity = Diagnostic.Warning;
        components = List.sort compare dup;
        witness;
        message =
          Printf.sprintf
            "%d component(s) duplicate equivalent logic across %d \
             class(es) (mergeable)"
            (List.length dup) (List.length cls);
      }
      :: !ds);
  List.rev !ds

(* Cross-check ------------------------------------------------------------ *)

let crosscheck ?(passes = 2) ?(cycles = 16) ?(seed = 0xdf1) t =
  let nl = t.nl in
  let n = Netlist.size nl in
  let exception Fail of string in
  try
    (* reaching-X: the worklist least fixpoint must equal the limit of
       synchronous Xsim iteration — the state sequence ascends the
       information order, so #dffs + 1 cycles reach the limit *)
    let ndffs =
      Array.fold_left
        (fun acc c -> match c with Netlist.Dffc _ -> acc + 1 | _ -> acc)
        0 nl.Netlist.components
    in
    let sync =
      Sim.ternary_values ~inputs:T.F ~respect_init:false ~cycles:(ndffs + 1) nl
    in
    let reaching = reaching_x t in
    for i = 0 to n - 1 do
      if reaching.(i) <> sync.(i) then
        raise
          (Fail
             (Printf.sprintf
                "reaching-x: %s is %c under the worklist fixpoint but %c \
                 after %d synchronous cycles"
                (label t i)
                (T.to_char reaching.(i))
                (T.to_char sync.(i))
                (ndffs + 1)))
    done;
    (* constants and equivalence classes against the packed reference
       simulator: a claimed constant must never toggle, claimed equals
       must carry equal words, on every lane of every cycle *)
    if t.lv.Levelize.cyclic = [] then begin
      let consts = constants t in
      let cls = classes t in
      let s = Sim.packed_create nl in
      for pass = 0 to passes - 1 do
        let st = Random.State.make [| seed; pass; cycles |] in
        Sim.packed_reset s;
        for c = 0 to cycles - 1 do
          List.iter
            (fun (nm, _) -> Sim.packed_set_input s nm (P.random_word st))
            nl.Netlist.inputs;
          Sim.packed_settle s;
          Array.iteri
            (fun i v ->
              match T.to_bool v with
              | Some b ->
                let expect = if b then P.lane_mask else 0 in
                if Sim.packed_value s i <> expect then
                  raise
                    (Fail
                       (Printf.sprintf
                          "constants: %s claimed stuck at %d but toggles \
                           at cycle %d of pass %d"
                          (label t i) (Bool.to_int b) c pass))
              | None -> ())
            consts;
          List.iter
            (fun members ->
              match members with
              | rep :: rest ->
                let w = Sim.packed_value s rep in
                List.iter
                  (fun j ->
                    if Sim.packed_value s j <> w then
                      raise
                        (Fail
                           (Printf.sprintf
                              "classes: %s and %s diverge at cycle %d of \
                               pass %d"
                              (label t rep) (label t j) c pass)))
                  rest
              | [] -> ())
            cls;
          Sim.packed_tick s
        done
      done
    end;
    Ok ()
  with Fail m -> Error m
