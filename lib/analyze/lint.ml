(* Netlist lint: a registry of static rules grounded in the paper's
   synchronous model (sections 3 and 4.5).

   The model is a set of static obligations — no combinational feedback,
   every flip flop powers up with a known value, every signal settles
   within the clock period — and some softer design-hygiene facts the
   extraction pipeline can leave behind (constants feeding gates, logic
   reaching no output, inputs driving nothing).  Each rule inspects one
   obligation and reports structured {!Diagnostic.t}s; expensive shared
   facts (levelization, fanout, ternary evaluations) are computed lazily
   once per run and shared across rules.

   Severities: [Error] marks a netlist the engines must not trust
   (malformed structure, combinational cycle, a configured timing budget
   blown); [Warning] marks model-hygiene findings that simulate fine but
   deserve eyes.  The shipped circuit catalogue is error-clean — CI
   enforces it. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module T = Hydra_core.Ternary

type config = {
  fanout_threshold : int;  (* hotspot rule: warn above this fanout *)
  path_budget : int option;  (* error when the critical path exceeds it *)
  xsim_cycles : int;  (* cycles of X-propagation for uninit-state *)
}

let default_config =
  { fanout_threshold = 64; path_budget = None; xsim_cycles = 4 }

(* Shared facts, computed at most once per run. *)
type ctx = {
  nl : Netlist.t;
  config : config;
  lv : Levelize.t Lazy.t;
  fanout : (int * int) list array Lazy.t;
  tern_free : T.t array Lazy.t;
      (* inputs X, state X, cycle 0: known values are structural constants *)
  tern_zero : T.t array Lazy.t;
      (* inputs 0, state from X, after xsim_cycles: X here means the
         power-up unknowns survive *)
  df_diags : Diagnostic.t list Lazy.t;
      (* the Dataflow fixpoint findings (stuck-register,
         unobservable-logic, redundant-logic), computed once *)
}

type rule = {
  name : string;
  about : string;
  check : ctx -> Diagnostic.t list;
}

let label ctx i = Netlist.describe ctx.nl i

let diag ?(witness = []) ctx rule severity components fmt =
  ignore ctx;
  Printf.ksprintf
    (fun message ->
      { Diagnostic.rule; severity; components; witness; message })
    fmt

(* comb-cycle: the synchronous model's hardest obligation (paper section
   3).  Reports one ordered witness cycle by name. *)
let comb_cycle_rule =
  {
    name = "comb-cycle";
    about = "combinational feedback loop (forbidden by the synchronous model)";
    check =
      (fun ctx ->
        let lv = Lazy.force ctx.lv in
        match lv.Levelize.cyclic with
        | [] -> []
        | cyclic ->
          let witness_comps =
            match Levelize.cycle_witness ctx.nl lv with
            | Some c -> c
            | None -> []
          in
          let witness = List.map (label ctx) witness_comps in
          let closed =
            match witness with [] -> [] | first :: _ -> witness @ [ first ]
          in
          [
            diag ~witness:closed ctx "comb-cycle" Diagnostic.Error cyclic
              "%d component(s) on combinational cycles; witness cycle: %s"
              (List.length cyclic)
              (Levelize.describe_cycle ctx.nl witness_comps);
          ]);
  }

(* floating-input: a declared input port that drives nothing. *)
let floating_input_rule =
  {
    name = "floating-input";
    about = "declared input port drives no component";
    check =
      (fun ctx ->
        let fanout = Lazy.force ctx.fanout in
        let dead =
          List.filter (fun (_, i) -> fanout.(i) = []) ctx.nl.Netlist.inputs
        in
        match dead with
        | [] -> []
        | dead ->
          let comps = List.sort compare (List.map snd dead) in
          [
            diag ctx "floating-input" Diagnostic.Warning comps
              "%d input port(s) drive nothing: %s" (List.length dead)
              (String.concat ", " (List.map fst dead));
          ]);
  }

(* dead-logic: components (other than ports) from which no output port is
   reachable — they burn area and simulation time for nothing.  Walks the
   fanin closure of the outputs. *)
let dead_logic_rule =
  {
    name = "dead-logic";
    about = "logic unreachable from any output port";
    check =
      (fun ctx ->
        let nl = ctx.nl in
        let n = Netlist.size nl in
        let live = Array.make n false in
        let rec mark i =
          if not live.(i) then begin
            live.(i) <- true;
            Array.iter mark nl.Netlist.fanin.(i)
          end
        in
        List.iter (fun (_, i) -> mark i) nl.Netlist.outputs;
        let dead = ref [] in
        for i = n - 1 downto 0 do
          match nl.Netlist.components.(i) with
          | Netlist.Inport _ | Netlist.Outport _ -> ()
          | _ -> if not live.(i) then dead := i :: !dead
        done;
        match !dead with
        | [] -> []
        | dead ->
          let shown =
            List.filteri (fun k _ -> k < 8) (List.map (label ctx) dead)
          in
          [
            diag ~witness:shown ctx "dead-logic" Diagnostic.Warning dead
              "%d component(s) reach no output port" (List.length dead);
          ]);
  }

(* const-gate: a gate whose output is already forced by the structural
   constants — ternary abstract evaluation with every input and every
   flip flop unknown.  Anything known here is foldable by Optimize. *)
let const_gate_rule =
  {
    name = "const-gate";
    about = "gate output is constant (foldable)";
    check =
      (fun ctx ->
        let values = Lazy.force ctx.tern_free in
        let found = ref [] in
        Array.iteri
          (fun i c ->
            match c with
            | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c ->
              if T.is_known values.(i) then found := i :: !found
            | _ -> ())
          ctx.nl.Netlist.components;
        match List.rev !found with
        | [] -> []
        | found ->
          let shown =
            List.filteri (fun k _ -> k < 8) (List.map (label ctx) found)
          in
          [
            diag ~witness:shown ctx "const-gate" Diagnostic.Warning found
              "%d gate(s) compute a constant regardless of inputs and \
               state (run Optimize to fold them)"
              (List.length found);
          ]);
  }

(* const-dff: a flip flop whose data input is structurally constant — it
   can only ever hold that value after the first tick, so it is a
   constant wearing state-element area. *)
let const_dff_rule =
  {
    name = "const-dff";
    about = "flip-flop data input is constant";
    check =
      (fun ctx ->
        let values = Lazy.force ctx.tern_free in
        let found = ref [] in
        Array.iteri
          (fun i c ->
            match c with
            | Netlist.Dffc _ ->
              if T.is_known values.(ctx.nl.Netlist.fanin.(i).(0)) then
                found := i :: !found
            | _ -> ())
          ctx.nl.Netlist.components;
        match List.rev !found with
        | [] -> []
        | found ->
          let shown =
            List.filteri (fun k _ -> k < 8) (List.map (label ctx) found)
          in
          [
            diag ~witness:shown ctx "const-dff" Diagnostic.Warning found
              "%d flip flop(s) reload a constant every cycle"
              (List.length found);
          ]);
  }

(* uninit-state: X-propagation (the {!Sim.ternary_values} evaluator with
   [respect_init:false], the same analysis Hydra_engine.Xsim performs)
   with all inputs held at 0.  An output still X after [xsim_cycles]
   ticks can observe the power-up state of some flip flop — the design
   depends on power-up values it never re-initializes. *)
let uninit_state_rule =
  {
    name = "uninit-state";
    about = "output can observe uninitialized power-up state";
    check =
      (fun ctx ->
        let values = Lazy.force ctx.tern_zero in
        let nl = ctx.nl in
        let escaped =
          List.filter (fun (_, i) -> values.(i) = T.X) nl.Netlist.outputs
        in
        match escaped with
        | [] -> []
        | escaped ->
          (* the witness: flip flops still X that structurally reach one
             of the escaped outputs through combinational logic *)
          let live = Array.make (Netlist.size nl) false in
          let rec mark i =
            if not live.(i) then begin
              live.(i) <- true;
              match nl.Netlist.components.(i) with
              | Netlist.Dffc _ -> ()  (* state boundary: stop *)
              | _ -> Array.iter mark nl.Netlist.fanin.(i)
            end
          in
          List.iter (fun (_, i) -> mark i) escaped;
          let x_dffs = ref [] in
          Array.iteri
            (fun i c ->
              match c with
              | Netlist.Dffc _ ->
                if live.(i) && values.(i) = T.X then x_dffs := i :: !x_dffs
              | _ -> ())
            nl.Netlist.components;
          let x_dffs = List.rev !x_dffs in
          let shown =
            List.filteri (fun k _ -> k < 8) (List.map (label ctx) x_dffs)
          in
          [
            diag ~witness:shown ctx "uninit-state" Diagnostic.Warning
              (List.sort compare (List.map snd escaped))
              "%d output(s) still unknown after %d cycle(s) of \
               X-propagation from power-up (%s): %d uninitialized flip \
               flop(s) reach them"
              (List.length escaped) ctx.config.xsim_cycles
              (String.concat ", " (List.map fst escaped))
              (List.length x_dffs);
          ]);
  }

(* fanout-hotspot: nets driving very many sinks — electrically slow and,
   for the engines, a cache-locality tell.  Threshold configurable. *)
let fanout_hotspot_rule =
  {
    name = "fanout-hotspot";
    about = "net drives more sinks than the configured threshold";
    check =
      (fun ctx ->
        let fanout = Lazy.force ctx.fanout in
        let hot = ref [] in
        Array.iteri
          (fun i sinks ->
            let d = List.length sinks in
            if d > ctx.config.fanout_threshold then hot := (i, d) :: !hot)
          fanout;
        match List.sort (fun (_, a) (_, b) -> compare b a) !hot with
        | [] -> []
        | hot ->
          let shown =
            List.filteri (fun k _ -> k < 8)
              (List.map
                 (fun (i, d) -> Printf.sprintf "%s[%d]" (label ctx i) d)
                 hot)
          in
          [
            diag ~witness:shown ctx "fanout-hotspot" Diagnostic.Warning
              (List.sort compare (List.map fst hot))
              "%d net(s) exceed the fanout threshold %d (worst: %s drives \
               %d sinks)"
              (List.length hot) ctx.config.fanout_threshold
              (label ctx (fst (List.hd hot)))
              (snd (List.hd hot));
          ]);
  }

(* path-budget: the paper's settling obligation made checkable — when a
   clock-period budget (in gate delays) is configured, the critical path
   must fit it.  The witness is one deepest register-to-register /
   port-to-port path. *)
let path_budget_rule =
  {
    name = "path-budget";
    about = "critical path exceeds the configured gate-delay budget";
    check =
      (fun ctx ->
        match ctx.config.path_budget with
        | None -> []
        | Some budget ->
          let lv = Lazy.force ctx.lv in
          if lv.Levelize.cyclic <> [] then []
            (* meaningless under a cycle; comb-cycle already fired *)
          else if lv.Levelize.critical_path <= budget then []
          else begin
            let nl = ctx.nl in
            let levels = lv.Levelize.levels in
            (* endpoint: the deepest driver of an outport or dff *)
            let endpoint = ref (-1) and deepest = ref (-1) in
            Array.iteri
              (fun i c ->
                match c with
                | Netlist.Outport _ | Netlist.Dffc _ ->
                  Array.iter
                    (fun d ->
                      if levels.(d) > !deepest then begin
                        deepest := levels.(d);
                        endpoint := d
                      end)
                    nl.Netlist.fanin.(i)
                | _ -> ())
              nl.Netlist.components;
            (* walk back through deepest drivers to a level-0 source *)
            let path = ref [] in
            let cur = ref !endpoint in
            path := [ !cur ];
            while levels.(!cur) > 0 do
              let next = ref (-1) in
              Array.iter
                (fun d ->
                  if !next = -1 || levels.(d) > levels.(!next) then next := d)
                nl.Netlist.fanin.(!cur);
              cur := !next;
              path := !cur :: !path
            done;
            let path = !path in
            [
              diag
                ~witness:(List.map (label ctx) path)
                ctx "path-budget" Diagnostic.Error path
                "critical path is %d gate delays, over the budget of %d"
                lv.Levelize.critical_path budget;
            ]
          end);
  }

(* The fixpoint rules: thin front-ends over {!Dataflow.diagnostics},
   which does the real work (and documents the message formats).  They
   are strictly stronger than their structural cousins — stuck-register
   sees through feedback loops const-dff cannot, unobservable-logic
   subsumes nothing but sharpens dead-logic's "reaches no output" to
   "reaches outputs only through constants" — and every verdict they
   rest on is simulation-falsifiable via Dataflow.crosscheck. *)
let dataflow_rule name about =
  {
    name;
    about;
    check =
      (fun ctx ->
        List.filter
          (fun d -> d.Diagnostic.rule = name)
          (Lazy.force ctx.df_diags));
  }

let stuck_register_rule =
  dataflow_rule "stuck-register"
    "flip flop provably holds its power-up value forever"

let unobservable_logic_rule =
  dataflow_rule "unobservable-logic"
    "logic reaches outputs only through constant-masked paths"

let redundant_logic_rule =
  dataflow_rule "redundant-logic"
    "component provably equivalent to an earlier one (mergeable)"

(* The registry, in report order. *)
let rules =
  [
    comb_cycle_rule;
    floating_input_rule;
    dead_logic_rule;
    const_gate_rule;
    const_dff_rule;
    stuck_register_rule;
    unobservable_logic_rule;
    redundant_logic_rule;
    uninit_state_rule;
    fanout_hotspot_rule;
    path_budget_rule;
  ]

let rule_names = List.map (fun r -> (r.name, r.about)) rules

let run ?(config = default_config) nl =
  (* A malformed netlist makes every other analysis unsafe (they index
     with the fanin numbers), so validation gates the registry. *)
  match Netlist.validate nl with
  | Error reason ->
    [
      {
        Diagnostic.rule = "invalid-netlist";
        severity = Diagnostic.Error;
        components = [];
        witness = [];
        message = "malformed netlist: " ^ reason;
      };
    ]
  | Ok () ->
    let ctx =
      {
        nl;
        config;
        lv = lazy (Levelize.compute nl);
        fanout = lazy (Netlist.fanout nl);
        tern_free = lazy (Sim.ternary_values ~inputs:T.X ~cycles:0 nl);
        tern_zero =
          lazy
            (Sim.ternary_values ~inputs:T.F ~respect_init:false
               ~cycles:config.xsim_cycles nl);
        df_diags = lazy (Dataflow.diagnostics (Dataflow.create nl));
      }
    in
    (* Deterministic output contract: stable sort by rule name, then by
       the involved component indices — the order tools and the pinned
       JSON fixtures can rely on, independent of registry order. *)
    List.concat_map (fun r -> r.check ctx) rules
    |> List.stable_sort (fun a b ->
           match compare a.Diagnostic.rule b.Diagnostic.rule with
           | 0 -> compare a.Diagnostic.components b.Diagnostic.components
           | c -> c)
