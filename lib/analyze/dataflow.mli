(** Fixpoint dataflow analyses over netlists: a generic worklist solver
    with pluggable lattice domains, plus four clients — sequential
    constant propagation through flip flops from the reset state,
    definitive reaching-X (power-up unknowns), backward observability,
    and equivalence-class detection by partition refinement.  Feeds the
    [stuck-register] / [unobservable-logic] / [redundant-logic] lint
    rules, the certified {!Sweep} optimizer, and
    {!Hydra_verify.Bmc}-style state-space pruning.  Every positive
    verdict is falsifiable by simulation and {!crosscheck} does so
    against the packed 62-lane reference simulator. *)

type solve_stats = {
  visits : int;  (** worklist pops (transfer evaluations) *)
  updates : int;  (** pops whose recomputed value changed *)
}

val solve :
  ?frozen:(int -> bool) ->
  n:int ->
  equal:('a -> 'a -> bool) ->
  succs:(int -> int list) ->
  transfer:((int -> 'a) -> int -> 'a) ->
  init:(int -> 'a) ->
  unit ->
  'a array * solve_stats
(** Chaotic iteration over nodes [0..n-1]: seed every non-frozen node,
    pop, recompute [transfer get i] (reading neighbours through [get]),
    and requeue [succs i] on change.  When [init] is a pre-fixpoint
    ([init i ⊑ transfer init i]) and every transfer is monotone over a
    finite-height lattice, this terminates at the least fixpoint above
    [init] regardless of visit order.  [frozen] nodes keep their [init]
    value and are never recomputed (used to pin components on
    combinational cycles at X). *)

type t
(** Memoized analysis state for one netlist: each analysis runs at most
    once, later queries are free. *)

val create : Hydra_netlist.Netlist.t -> t
(** Validates and levelizes.  Raises [Invalid_argument] on a malformed
    netlist — the analyses index arrays with fanin numbers unchecked. *)

val netlist : t -> Hydra_netlist.Netlist.t

val constants : t -> Hydra_core.Ternary.t array
(** Sequential constant propagation.  A known value means the component
    provably holds it at {e every} cycle from reset, for every input
    sequence; [X] means "not a constant".  Strictly stronger than the
    lint [const-gate]/[const-dff] structural checks: the fixpoint flows
    through flip flops across clock cycles.  Components on combinational
    cycles read X. *)

val stuck_registers : t -> (int * bool) list
(** Flip flops whose {!constants} value is known, with that value —
    necessarily their power-up value.  Dead state: they never leave
    reset. *)

val constant_components : t -> (int * bool) list
(** Gates and flip flops (not ports, not [Constant] components) whose
    {!constants} value is known. *)

val reaching_x : t -> Hydra_core.Ternary.t array
(** Definitive power-up X-propagation: inputs held at 0, flip flops
    starting unknown, least fixpoint in the information order.  [X]
    here means the power-up unknowns survive {e forever} — equal to the
    limit of running {!Sim.ternary_values} for ever more cycles, but
    computed directly ({!crosscheck} verifies the agreement). *)

val reaching_x_outputs : t -> string list
(** Output ports whose {!reaching_x} value is X: they can observe
    uninitialized power-up state at arbitrarily late cycles. *)

val observable : t -> bool array
(** Backward observability: a component is observable when it is an
    output port or some sink of it transmits, where a sink whose own
    value is a known sequential constant transmits nothing. *)

val masked : t -> int list
(** Gates and flip flops that structurally reach an output but are not
    {!observable} and not themselves known constants: every path to an
    output is masked by a constant, so they are removable.  Sorted
    ascending.  Disjoint from plain dead logic (unreachable components),
    which the [dead-logic] lint rule already reports. *)

val classes : t -> int list list
(** Provable equivalence classes among gates and flip flops that are
    not known constants: members of one class carry equal values at
    every cycle from reset, for every input sequence (stable partition
    refinement = bisimulation; seeded by random-simulation signatures,
    confirmed by structural induction).  Each class is sorted ascending
    and has at least two members; classes are sorted by first member. *)

val diagnostics : t -> Diagnostic.t list
(** The three dataflow lint findings — [stuck-register],
    [unobservable-logic], [redundant-logic] — as structured
    diagnostics, in that order, each aggregated like the {!Lint}
    rules. *)

val stats : t -> (string * solve_stats) list
(** Worklist statistics per fixpoint analysis (forces all three). *)

val crosscheck :
  ?passes:int -> ?cycles:int -> ?seed:int -> t -> (unit, string) result
(** Falsification run: check {!reaching_x} against synchronous ternary
    iteration (exact equality at the limit), then simulate [passes]
    (default 2) × [cycles] (default 16) random packed cycles and verify
    every claimed constant never toggles and every claimed equivalence
    class carries equal words on all 62 lanes.  Any disagreement is an
    analysis soundness bug, reported with the offending component and
    cycle.  The packed part is skipped on combinationally cyclic
    netlists (they cannot be simulated). *)
