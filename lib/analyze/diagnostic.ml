(* Structured lint diagnostics.

   Every finding names the rule that produced it, carries the component
   indices involved and (when the rule can produce one) an ordered
   human-readable witness path, and renders both as text for terminals
   and as JSON for tools.  The JSON shape is part of the CLI contract
   (`hydra lint --json`) and is pinned by a test, so change it
   deliberately. *)

type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  components : int list;  (* component indices involved, ascending *)
  witness : string list;  (* ordered path of component labels, may be [] *)
  message : string;
}

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = d.severity = Error

let to_string d =
  let witness =
    match d.witness with
    | [] -> ""
    | w -> Printf.sprintf "\n    witness: %s" (String.concat " -> " w)
  in
  Printf.sprintf "%s[%s]: %s%s" (severity_string d.severity) d.rule d.message
    witness

(* JSON rendering, dependency-free.  Strings are escaped per RFC 8259
   (quotes, backslashes, control characters). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let to_json d =
  Printf.sprintf
    "{\"rule\":%s,\"severity\":%s,\"components\":[%s],\"witness\":[%s],\"message\":%s}"
    (json_string d.rule)
    (json_string (severity_string d.severity))
    (String.concat "," (List.map string_of_int d.components))
    (String.concat "," (List.map json_string d.witness))
    (json_string d.message)

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"

let count_errors ds = List.length (List.filter is_error ds)

(* SARIF 2.1.0, the static-analysis interchange format most code-review
   tooling ingests.  One run per call; each (target, diagnostics) pair
   becomes results tagged with the target as a logical location.  Only
   the minimal required subset of the schema is emitted — version, tool
   driver with a rule table, and results with ruleId / level /
   message / logicalLocations. *)
let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

let to_sarif ?(tool = "hydra") targets =
  let rules =
    List.sort_uniq compare
      (List.concat_map (fun (_, ds) -> List.map (fun d -> d.rule) ds) targets)
  in
  let rule_json r = Printf.sprintf "{\"id\":%s}" (json_string r) in
  let result_json target d =
    let text =
      match d.witness with
      | [] -> d.message
      | w -> d.message ^ " [" ^ String.concat " -> " w ^ "]"
    in
    Printf.sprintf
      "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s},\"locations\":[{\"logicalLocations\":[{\"fullyQualifiedName\":%s}]}]}"
      (json_string d.rule)
      (json_string (sarif_level d.severity))
      (json_string text) (json_string target)
  in
  let results =
    List.concat_map (fun (target, ds) -> List.map (result_json target) ds)
      targets
  in
  Printf.sprintf
    "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":%s,\"rules\":[%s]}},\"results\":[%s]}]}"
    (json_string tool)
    (String.concat "," (List.map rule_json rules))
    (String.concat "," results)
