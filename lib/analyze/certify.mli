(** Translation validation for netlist transforms: check each {e run} of
    a transform instead of trusting the pass.  Structural invariants
    (well-formedness, port preservation) plus either a complete
    permutation proof (for pure index re-layouts) or packed-random I/O
    equivalence against the pre-transform netlist on the independent
    {!Sim} reference simulator.  Success returns a certificate naming
    what was verified; failure carries a concrete counterexample. *)

type counterexample = {
  output : string;  (** first disagreeing output port *)
  cycle : int;  (** 0-based cycle of the disagreement *)
  inputs : (string * bool list) list;
      (** per input port: the driving stream up to and including the
          failing cycle — replaying it reproduces the mismatch *)
}

type failure =
  | Invalid of { which : string; reason : string }
  | Ports_differ of string
  | Not_permutation of string
  | Behaviour_differs of counterexample

type certificate = { transform : string; checks : string list }

type outcome =
  | Certified of certificate
  | Refuted of { transform : string; failure : failure }

exception Certification_failed of string

val certified : outcome -> bool
val describe_failure : failure -> string
val describe : outcome -> string

val ensure : outcome -> unit
(** Raise {!Certification_failed} (with {!describe}) on a refutation. *)

val validate : Hydra_netlist.Netlist.t -> (unit, string) result
(** {!Hydra_netlist.Netlist.validate}. *)

val io_equiv :
  ?passes:int ->
  ?cycles:int ->
  ?seed:int ->
  Hydra_netlist.Netlist.t ->
  Hydra_netlist.Netlist.t ->
  (unit, failure) result
(** Packed-random sequential I/O equivalence on the reference simulator:
    [passes] (default 2) passes of 62 random stimulus streams, [cycles]
    (default 16) cycles each, deterministic in [seed]. *)

val check :
  ?passes:int ->
  ?cycles:int ->
  ?seed:int ->
  transform:string ->
  pre:Hydra_netlist.Netlist.t ->
  post:Hydra_netlist.Netlist.t ->
  unit ->
  outcome
(** Validate both sides, check port preservation, then {!io_equiv}. *)

val check_permutation :
  transform:string ->
  pre:Hydra_netlist.Netlist.t ->
  post:Hydra_netlist.Netlist.t ->
  perm:int array ->
  outcome
(** Complete structural proof for index-permutation transforms:
    [perm.(i)] is the post index of pre component [i]; components,
    fanin edges, names and ports must map exactly. *)

val optimize :
  ?passes:int ->
  ?cycles:int ->
  ?seed:int ->
  Hydra_netlist.Netlist.t ->
  Hydra_netlist.Netlist.t * outcome
(** Run {!Hydra_netlist.Optimize.optimize} and certify the run. *)

val rank_major : Hydra_netlist.Netlist.t -> Hydra_netlist.Netlist.t * outcome
(** Run {!Hydra_netlist.Layout.rank_major_permutation} and certify the
    permutation. *)

val sweep :
  ?passes:int ->
  ?cycles:int ->
  ?seed:int ->
  Hydra_netlist.Netlist.t ->
  Hydra_netlist.Netlist.t * Sweep.report * outcome
(** Run the dataflow-driven {!Sweep.run} and translation-validate the
    result against the original: a refutation carries a replayable
    per-lane counterexample input stream. *)
