(** Reference netlist evaluators for the analyses: a ternary (0/1/X)
    abstract evaluator for the lint rules, and a deliberately simple
    packed 62-lane concrete simulator that {!Certify} uses as the
    independent oracle when validating transforms — it shares no code
    with the compiled engines, so a bug in their optimizer or re-layout
    passes cannot hide in the checker. *)

val ternary_gate :
  Hydra_netlist.Netlist.component ->
  (int -> Hydra_core.Ternary.t) ->
  Hydra_core.Ternary.t option
(** The one ternary abstract transfer function, shared by
    {!ternary_values} and every forward {!Dataflow} domain.  Evaluates a
    combinational component (gate or outport) over Kleene logic, reading
    fanin slot [k]'s value through the callback; [None] for components
    that are not combinational functions of their fanin (inports,
    constants, flip flops) — their values are boundary conditions of the
    calling analysis. *)

val ternary_values :
  ?inputs:Hydra_core.Ternary.t ->
  ?respect_init:bool ->
  ?cycles:int ->
  Hydra_netlist.Netlist.t ->
  Hydra_core.Ternary.t array
(** Settled per-component values after [cycles] clock ticks (default 0:
    the first settle), every input port held at [inputs] (default X) and
    flip flops powered up at X unless [respect_init] (default false).
    Components on combinational cycles read X. *)

type packed

val packed_create : Hydra_netlist.Netlist.t -> packed
(** Raises {!Hydra_netlist.Levelize.Combinational_cycle} on an invalid
    circuit. *)

val packed_reset : packed -> unit
val packed_set_input : packed -> string -> int -> unit
val packed_settle : packed -> unit
val packed_tick : packed -> unit
val packed_output : packed -> string -> int
val packed_outputs : packed -> (string * int) list

val packed_value : packed -> int -> int
(** Settled word of component [i] (any component, not just a port) —
    {!Dataflow.crosscheck} compares per-component analysis verdicts
    against simulated lane words. *)
