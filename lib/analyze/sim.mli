(** Reference netlist evaluators for the analyses: a ternary (0/1/X)
    abstract evaluator for the lint rules, and a deliberately simple
    packed 62-lane concrete simulator that {!Certify} uses as the
    independent oracle when validating transforms — it shares no code
    with the compiled engines, so a bug in their optimizer or re-layout
    passes cannot hide in the checker. *)

val ternary_values :
  ?inputs:Hydra_core.Ternary.t ->
  ?respect_init:bool ->
  ?cycles:int ->
  Hydra_netlist.Netlist.t ->
  Hydra_core.Ternary.t array
(** Settled per-component values after [cycles] clock ticks (default 0:
    the first settle), every input port held at [inputs] (default X) and
    flip flops powered up at X unless [respect_init] (default false).
    Components on combinational cycles read X. *)

type packed

val packed_create : Hydra_netlist.Netlist.t -> packed
(** Raises {!Hydra_netlist.Levelize.Combinational_cycle} on an invalid
    circuit. *)

val packed_reset : packed -> unit
val packed_set_input : packed -> string -> int -> unit
val packed_settle : packed -> unit
val packed_tick : packed -> unit
val packed_output : packed -> string -> int
val packed_outputs : packed -> (string * int) list
