(* Translation validation for netlist transforms.

   The engines run transformed netlists (Optimize's folding/dedup,
   Layout.rank_major's permutation, Transform's state-element rewrites)
   and trust that the transform preserved circuit meaning.  Following
   the translation-validation tradition (Fe-Si, Hardcaml's
   post-transform checks), this module checks each *run* of a transform
   instead of trusting the pass:

   - structural invariants: the post netlist is well-formed
     ({!Netlist.validate}) and presents the same input/output ports;
   - for pure index permutations (rank_major), a complete proof: the
     claimed permutation is a bijection that maps components, fanin
     edges, names and ports exactly — nothing behavioural left to test;
   - for rewriting transforms (Optimize), packed-random I/O equivalence
     against the pre-transform netlist on an independent reference
     simulator ({!Sim}): both circuits see the same 62 random stimulus
     streams per pass, every output word is compared every cycle, and a
     disagreement is reported as a concrete per-lane counterexample
     (input streams up to the failing cycle).

   A successful check returns a certificate naming what was verified; a
   failure says precisely how the transform lied. *)

module Netlist = Hydra_netlist.Netlist
module P = Hydra_core.Packed

type counterexample = {
  output : string;  (* first disagreeing output port *)
  cycle : int;  (* 0-based cycle of the disagreement *)
  inputs : (string * bool list) list;
      (* per input port: the driving stream up to and including the
         failing cycle — replaying it reproduces the mismatch *)
}

type failure =
  | Invalid of { which : string; reason : string }
      (* pre/post netlist fails Netlist.validate *)
  | Ports_differ of string
  | Not_permutation of string
  | Behaviour_differs of counterexample

type certificate = {
  transform : string;
  checks : string list;  (* what was verified, e.g. "io-equiv:2x16" *)
}

type outcome =
  | Certified of certificate
  | Refuted of { transform : string; failure : failure }

exception Certification_failed of string

let certified = function Certified _ -> true | Refuted _ -> false

let describe_failure = function
  | Invalid { which; reason } ->
    Printf.sprintf "%s netlist is malformed: %s" which reason
  | Ports_differ m -> "ports differ: " ^ m
  | Not_permutation m -> "claimed permutation is wrong: " ^ m
  | Behaviour_differs { output; cycle; inputs } ->
    Printf.sprintf
      "behaviour differs at output %S, cycle %d (counterexample inputs: %s)"
      output cycle
      (String.concat "; "
         (List.map
            (fun (name, bits) ->
              Printf.sprintf "%s=%s" name
                (String.concat ""
                   (List.map (fun b -> if b then "1" else "0") bits)))
            inputs))

let describe = function
  | Certified { transform; checks } ->
    Printf.sprintf "%s: certified (%s)" transform (String.concat ", " checks)
  | Refuted { transform; failure } ->
    Printf.sprintf "%s: REFUTED — %s" transform (describe_failure failure)

let ensure outcome =
  match outcome with
  | Certified _ -> ()
  | Refuted _ -> raise (Certification_failed (describe outcome))

let validate = Netlist.validate

(* Same port names on both sides (order-insensitive: Optimize preserves
   order today, but the contract is the name set). *)
let ports_preserved pre post =
  let sorted l = List.sort compare (List.map fst l) in
  if sorted pre.Netlist.inputs <> sorted post.Netlist.inputs then
    Error
      (Printf.sprintf "inputs {%s} vs {%s}"
         (String.concat "," (sorted pre.Netlist.inputs))
         (String.concat "," (sorted post.Netlist.inputs)))
  else if sorted pre.Netlist.outputs <> sorted post.Netlist.outputs then
    Error
      (Printf.sprintf "outputs {%s} vs {%s}"
         (String.concat "," (sorted pre.Netlist.outputs))
         (String.concat "," (sorted post.Netlist.outputs)))
  else Ok ()

(* Packed-random sequential I/O equivalence on the reference simulator:
   [passes] passes of 62 random stimulus streams, [cycles] cycles each,
   deterministic in [seed]. *)
let io_equiv ?(passes = 2) ?(cycles = 16) ?(seed = 0x5eed) pre post =
  let s1 = Sim.packed_create pre and s2 = Sim.packed_create post in
  let in_names = List.map fst pre.Netlist.inputs in
  let out_names = List.map fst pre.Netlist.outputs in
  let result = ref (Ok ()) in
  (try
     for pass = 0 to passes - 1 do
       let st = Random.State.make [| seed; pass; cycles |] in
       Sim.packed_reset s1;
       Sim.packed_reset s2;
       let history = ref [] in
       for c = 0 to cycles - 1 do
         let row = List.map (fun n -> (n, P.random_word st)) in_names in
         history := row :: !history;
         List.iter
           (fun (n, w) ->
             Sim.packed_set_input s1 n w;
             Sim.packed_set_input s2 n w)
           row;
         Sim.packed_settle s1;
         Sim.packed_settle s2;
         List.iter
           (fun n ->
             let w1 = Sim.packed_output s1 n
             and w2 = Sim.packed_output s2 n in
             if w1 <> w2 then begin
               let diff = w1 lxor w2 in
               let rec first_lane l =
                 if P.lane diff l then l else first_lane (l + 1)
               in
               let lane = first_lane 0 in
               let streams =
                 List.map
                   (fun iname ->
                     ( iname,
                       List.rev_map
                         (fun row -> P.lane (List.assoc iname row) lane)
                         !history ))
                   in_names
               in
               result :=
                 Error
                   (Behaviour_differs
                      { output = n; cycle = c; inputs = streams });
               raise Exit
             end)
           out_names;
         Sim.packed_tick s1;
         Sim.packed_tick s2
       done
     done
   with Exit -> ());
  !result

(* Generic rewriting-transform check: validate both sides, ports, then
   packed-random I/O equivalence. *)
let check ?passes ?cycles ?seed ~transform ~pre ~post () =
  let refute failure = Refuted { transform; failure } in
  match validate pre with
  | Error reason -> refute (Invalid { which = "pre"; reason })
  | Ok () -> (
    match validate post with
    | Error reason -> refute (Invalid { which = "post"; reason })
    | Ok () -> (
      match ports_preserved pre post with
      | Error m -> refute (Ports_differ m)
      | Ok () -> (
        match io_equiv ?passes ?cycles ?seed pre post with
        | Error failure -> refute failure
        | Ok () ->
          let p = Option.value passes ~default:2
          and c = Option.value cycles ~default:16 in
          Certified
            {
              transform;
              checks =
                [
                  "validate"; "ports";
                  Printf.sprintf "io-equiv:%dx%dx%d" p c P.lanes;
                ];
            })))

(* Permutation check: a complete structural proof for index-permutation
   transforms.  [perm.(i)] is the post index of pre component [i]. *)
let check_permutation ~transform ~pre ~post ~perm =
  let refute m = Refuted { transform; failure = Not_permutation m } in
  let n = Netlist.size pre in
  if Netlist.size post <> n then
    refute
      (Printf.sprintf "sizes differ: %d pre vs %d post" n (Netlist.size post))
  else if Array.length perm <> n then
    refute
      (Printf.sprintf "permutation length %d for %d components"
         (Array.length perm) n)
  else begin
    let seen = Array.make n false in
    let exception Bad of string in
    try
      Array.iteri
        (fun i j ->
          if j < 0 || j >= n then
            raise (Bad (Printf.sprintf "perm.(%d) = %d out of range" i j));
          if seen.(j) then
            raise (Bad (Printf.sprintf "post index %d hit twice" j));
          seen.(j) <- true)
        perm;
      Array.iteri
        (fun i comp ->
          let j = perm.(i) in
          if post.Netlist.components.(j) <> comp then
            raise
              (Bad
                 (Printf.sprintf "component %d (%s) maps to %d (%s)" i
                    (Netlist.component_name comp)
                    j
                    (Netlist.component_name post.Netlist.components.(j))));
          if post.Netlist.names.(j) <> pre.Netlist.names.(i) then
            raise (Bad (Printf.sprintf "names of component %d not carried" i));
          let fi = Array.map (fun d -> perm.(d)) pre.Netlist.fanin.(i) in
          if post.Netlist.fanin.(j) <> fi then
            raise
              (Bad (Printf.sprintf "fanin of component %d not permuted" i)))
        pre.Netlist.components;
      let map_ports ports = List.map (fun (s, i) -> (s, perm.(i))) ports in
      if post.Netlist.inputs <> map_ports pre.Netlist.inputs then
        raise (Bad "input port list not permuted");
      if post.Netlist.outputs <> map_ports pre.Netlist.outputs then
        raise (Bad "output port list not permuted");
      Certified
        {
          transform;
          checks = [ "bijection"; "components"; "fanin"; "names"; "ports" ];
        }
    with Bad m -> refute m
  end

(* Certified wrappers for the standard transforms. *)
let optimize ?passes ?cycles ?seed nl =
  let post = Hydra_netlist.Optimize.optimize nl in
  (post, check ?passes ?cycles ?seed ~transform:"Optimize.optimize" ~pre:nl ~post ())

let rank_major nl =
  let post, perm = Hydra_netlist.Layout.rank_major_permutation nl in
  (post, check_permutation ~transform:"Layout.rank_major" ~pre:nl ~post ~perm)

let sweep ?passes ?cycles ?seed nl =
  let post, report = Sweep.run nl in
  ( post,
    report,
    check ?passes ?cycles ?seed ~transform:"Sweep.run" ~pre:nl ~post () )
