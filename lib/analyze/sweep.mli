(** Certified sweep optimization: delete what {!Dataflow} proves
    removable.  Sequentially constant gates and flip flops become
    constant components, equivalence-class duplicates are rewired onto
    their representative, and unobservable logic loses its last
    reference and is dropped by the rebuild.  Behaviour-affecting —
    validate every run with {!Certify.sweep}. *)

type report = {
  before : int;  (** component count going in *)
  after : int;  (** component count coming out *)
  constants : int;  (** components rewritten to a constant *)
  merged : int;  (** components rewired onto a class representative *)
}

val aliases : Dataflow.t -> Hydra_netlist.Optimize.alias array * int * int
(** The alias map Sweep would apply, with its (constants, merged)
    counts.  Exposed for tests that corrupt it to prove refutation
    works. *)

val run : Hydra_netlist.Netlist.t -> Hydra_netlist.Netlist.t * report
(** Analyze and sweep.  Raises [Invalid_argument] on a malformed
    netlist (via {!Dataflow.create}). *)

val describe : report -> string
