(* Reference netlist evaluators for the analyses.

   Two deliberately simple interpreters over [Netlist.t], kept below
   [Hydra_engine] in the dependency order so the engines themselves can
   be *checked* against them:

   - a ternary abstract evaluator (Kleene 0/1/X over
     {!Hydra_core.Ternary}) used by the lint rules: constants propagate,
     inputs and flip-flop state are parameters, components left
     unleveled by a combinational cycle stay X;

   - a packed (62-lane) concrete simulator used by {!Certify} as the
     independent oracle for transform translation-validation.  It shares
     no code with the compiled engines — no optimizer, no re-layout, no
     fused kernels — which is the point: a bug in those passes cannot
     hide in the checker. *)

module Netlist = Hydra_netlist.Netlist
module Levelize = Hydra_netlist.Levelize
module T = Hydra_core.Ternary
module P = Hydra_core.Packed

(* Ternary evaluation ---------------------------------------------------- *)

(* THE ternary abstract transfer function over netlist components: one
   Kleene gate evaluation, reading fanin values through [fi].  This is the
   single shared implementation behind the lint rules' abstract
   evaluation ({!ternary_values}) and every {!Dataflow} forward domain —
   a soundness bug here would poison both, which is why test_dataflow
   checks the gate laws (monotonicity w.r.t. {!T.leq}) by QCheck.
   [None] for components that are not combinational functions of their
   fanin (ports, constants, flip flops): their values are boundary
   conditions of whichever analysis is running. *)
let ternary_gate (c : Netlist.component) (fi : int -> T.t) : T.t option =
  match c with
  | Netlist.Invc -> Some (T.inv (fi 0))
  | Netlist.And2c -> Some (T.and2 (fi 0) (fi 1))
  | Netlist.Or2c -> Some (T.or2 (fi 0) (fi 1))
  | Netlist.Xor2c -> Some (T.xor2 (fi 0) (fi 1))
  | Netlist.Outport _ -> Some (fi 0)
  | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ -> None

(* Settled component values after [cycles] clock ticks, with every input
   port held at [inputs] and flip flops powered up at X (or their declared
   value with [respect_init]).  Components on combinational cycles are
   never evaluated and read X. *)
let ternary_values ?(inputs = T.X) ?(respect_init = false) ?(cycles = 0) nl =
  let n = Netlist.size nl in
  let lv = Levelize.compute nl in
  let values = Array.make n T.X in
  let state = Array.make n T.X in
  Array.iteri
    (fun i c ->
      match c with
      | Netlist.Dffc init ->
        state.(i) <- (if respect_init then T.of_bool init else T.X)
      | _ -> ())
    nl.Netlist.components;
  let settle () =
    Array.iteri
      (fun i c ->
        match c with
        | Netlist.Inport _ -> values.(i) <- inputs
        | Netlist.Constant b -> values.(i) <- T.of_bool b
        | Netlist.Dffc _ -> values.(i) <- state.(i)
        | _ -> ())
      nl.Netlist.components;
    Array.iter
      (fun i ->
        let fi k = values.(nl.Netlist.fanin.(i).(k)) in
        match ternary_gate nl.Netlist.components.(i) fi with
        | Some v -> values.(i) <- v
        | None -> ())
      lv.Levelize.order
  in
  settle ();
  for _ = 1 to cycles do
    Array.iteri
      (fun i c ->
        match c with
        | Netlist.Dffc _ -> state.(i) <- values.(nl.Netlist.fanin.(i).(0))
        | _ -> ())
      nl.Netlist.components;
    settle ()
  done;
  values

(* Packed reference simulator -------------------------------------------- *)

type packed = {
  nl : Netlist.t;
  order : int array;
  values : int array;
  state : int array;  (* indexed like components; only dffs used *)
  input_index : (string, int) Hashtbl.t;
  dffs : int array;
  dff_init : int array;  (* broadcast power-up words *)
}

let packed_create nl =
  let lv = Levelize.check nl in
  let n = Netlist.size nl in
  let input_index = Hashtbl.create 16 in
  List.iter (fun (s, i) -> Hashtbl.replace input_index s i) nl.Netlist.inputs;
  let dffs = ref [] in
  Array.iteri
    (fun i c -> match c with Netlist.Dffc _ -> dffs := i :: !dffs | _ -> ())
    nl.Netlist.components;
  let dffs = Array.of_list (List.rev !dffs) in
  let dff_init =
    Array.map
      (fun i ->
        match nl.Netlist.components.(i) with
        | Netlist.Dffc b -> if b then P.lane_mask else 0
        | _ -> assert false)
      dffs
  in
  let t =
    {
      nl;
      order = lv.Levelize.order;
      values = Array.make n 0;
      state = Array.make n 0;
      input_index;
      dffs;
      dff_init;
    }
  in
  Array.iteri (fun j i -> t.state.(i) <- dff_init.(j)) dffs;
  t

let packed_reset t =
  Array.fill t.values 0 (Array.length t.values) 0;
  Array.fill t.state 0 (Array.length t.state) 0;
  Array.iteri (fun j i -> t.state.(i) <- t.dff_init.(j)) t.dffs

let packed_set_input t name w =
  match Hashtbl.find_opt t.input_index name with
  | Some i -> t.values.(i) <- w land P.lane_mask
  | None -> invalid_arg ("Sim.packed_set_input: unknown input " ^ name)

let packed_settle t =
  let nl = t.nl in
  Array.iteri
    (fun i c ->
      match c with
      | Netlist.Constant b -> t.values.(i) <- (if b then P.lane_mask else 0)
      | Netlist.Dffc _ -> t.values.(i) <- t.state.(i)
      | _ -> ())
    nl.Netlist.components;
  Array.iter
    (fun i ->
      let fi k = t.values.(nl.Netlist.fanin.(i).(k)) in
      t.values.(i) <-
        (match nl.Netlist.components.(i) with
        | Netlist.Invc -> lnot (fi 0) land P.lane_mask
        | Netlist.And2c -> fi 0 land fi 1
        | Netlist.Or2c -> fi 0 lor fi 1
        | Netlist.Xor2c -> fi 0 lxor fi 1
        | Netlist.Outport _ -> fi 0
        | Netlist.Inport _ | Netlist.Constant _ | Netlist.Dffc _ ->
          t.values.(i)))
    t.order

let packed_tick t =
  Array.iter
    (fun i -> t.state.(i) <- t.values.(t.nl.Netlist.fanin.(i).(0)))
    t.dffs

let packed_output t name =
  match List.assoc_opt name t.nl.Netlist.outputs with
  | Some i -> t.values.(i)
  | None -> invalid_arg ("Sim.packed_output: unknown output " ^ name)

let packed_outputs t =
  List.map (fun (s, i) -> (s, t.values.(i))) t.nl.Netlist.outputs

(* Settled word of any component, by index — Dataflow's cross-check reads
   every component, not just ports, to compare analysis verdicts against
   what the lanes actually did. *)
let packed_value t i = t.values.(i)
