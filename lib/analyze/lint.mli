(** Netlist lint: a registry of static rules grounded in the paper's
    synchronous model.  [Error] severity marks netlists the engines must
    not trust (malformed structure, combinational cycles, a blown timing
    budget); [Warning] marks model-hygiene findings.

    Rules: [comb-cycle] (ordered witness cycle), [floating-input],
    [dead-logic], [const-gate] and [const-dff] (ternary abstract
    evaluation), [stuck-register], [unobservable-logic] and
    [redundant-logic] (the {!Dataflow} fixpoint analyses),
    [uninit-state] (X-propagation from power-up), [fanout-hotspot], and
    [path-budget] (only when a budget is configured).  A malformed
    netlist short-circuits to a single [invalid-netlist] error. *)

type config = {
  fanout_threshold : int;  (** hotspot rule: warn above this fanout (64) *)
  path_budget : int option;
      (** error when the critical path exceeds it (default [None]: off) *)
  xsim_cycles : int;  (** cycles of X-propagation for uninit-state (4) *)
}

val default_config : config

val rule_names : (string * string) list
(** Registry contents: rule name and one-line description, in report
    order. *)

val run : ?config:config -> Hydra_netlist.Netlist.t -> Diagnostic.t list
(** Run every rule; never raises on malformed input (reports
    [invalid-netlist] instead).  Output is deterministic: stable-sorted
    by rule name, then by involved component indices — the order the
    pinned JSON fixtures rely on. *)
