(* Certified sweep optimization driven by the dataflow analyses.

   Where Optimize folds what is *structurally* evident (a gate fed by a
   constant component), Sweep deletes what Dataflow *proves*: gates and
   flip flops that are sequential constants become constant components,
   every non-representative member of an equivalence class is rewired to
   its representative, and logic that was only ever observable through
   constant-masked paths loses its last reference and falls away in the
   rebuild's liveness walk — no separate pass needed.

   The aliases are behaviour-affecting surgery, so each run is meant to
   be translation-validated: use {!Certify.sweep}, which checks the
   result against the original on the independent reference simulator
   and yields a replayable counterexample if the analysis (or this
   file) ever lies. *)

module Netlist = Hydra_netlist.Netlist
module Optimize = Hydra_netlist.Optimize
module T = Hydra_core.Ternary

type report = {
  before : int;
  after : int;
  constants : int;  (* components rewritten to a constant *)
  merged : int;  (* components rewired onto a class representative *)
}

let aliases df =
  let nl = Dataflow.netlist df in
  let alias = Array.make (Netlist.size nl) Optimize.Self in
  let constants = ref 0 and merged = ref 0 in
  List.iter
    (fun (i, b) ->
      alias.(i) <- Optimize.Const b;
      incr constants)
    (Dataflow.constant_components df);
  (* classes exclude known constants, so the two alias sources never
     collide; representatives stay Self, so [To] chains are one hop *)
  List.iter
    (fun members ->
      match members with
      | rep :: rest ->
        List.iter
          (fun i ->
            alias.(i) <- Optimize.To rep;
            incr merged)
          rest
      | [] -> ())
    (Dataflow.classes df);
  (alias, !constants, !merged)

let run nl =
  let df = Dataflow.create nl in
  let alias, constants, merged = aliases df in
  let post = Optimize.apply_aliases nl alias in
  (post, { before = Netlist.size nl; after = Netlist.size post; constants; merged })

let describe r =
  Printf.sprintf
    "swept %d -> %d components (%d constant, %d merged, %d dropped)"
    r.before r.after r.constants r.merged
    (r.before - r.after)
