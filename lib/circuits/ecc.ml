(* Hamming(7,4) error-correcting code, with the extended SECDED variant.

   A purely combinational pair of circuits — encoder and decoder — whose
   correctness is an equational property ("decoding any single-bit
   corruption of an encoding recovers the data"), provable with the BDD
   semantics: exactly the formal-reasoning workflow of paper section 4.6.

   Bit positions follow the classic numbering: the 7-bit codeword is
   [p1; p2; d1; p4; d2; d3; d4] (parity bits at the power-of-two
   positions 1, 2 and 4). *)

module Make (S : Hydra_core.Signal_intf.COMB) = struct
  open S
  module G = Gates.Make (S)
  module M = Mux.Make (S)

  (* encode [d1; d2; d3; d4] -> 7-bit codeword *)
  let encode data =
    match data with
    | [ d1; d2; d3; d4 ] ->
      let p1 = G.xor3 d1 d2 d4 in
      let p2 = G.xor3 d1 d3 d4 in
      let p4 = G.xor3 d2 d3 d4 in
      [ p1; p2; d1; p4; d2; d3; d4 ]
    | _ -> invalid_arg "Ecc.encode: need 4 data bits"

  (* decode codeword -> (corrected data, error_detected).

     The syndrome [s4; s2; s1] is the 1-based position of a single flipped
     bit (0 = no error); the decoder flips that position back and
     re-extracts the data bits. *)
  let decode code =
    match code with
    | [ c1; c2; c3; c4; c5; c6; c7 ] ->
      let s1 = G.xorw [ c1; c3; c5; c7 ] in
      let s2 = G.xorw [ c2; c3; c6; c7 ] in
      let s4 = G.xorw [ c4; c5; c6; c7 ] in
      let error = G.or3 s1 s2 s4 in
      (* one-hot over 8 lines; line i = "error at position i" *)
      let lines = M.decode [ s4; s2; s1 ] in
      let flip pos c = xor2 c (List.nth lines pos) in
      let c3' = flip 3 c3
      and c5' = flip 5 c5
      and c6' = flip 6 c6
      and c7' = flip 7 c7 in
      ([ c3'; c5'; c6'; c7' ], error)
    | _ -> invalid_arg "Ecc.decode: need 7 code bits"

  (* SECDED: an eighth, overall parity bit distinguishes single errors
     (correctable) from double errors (detectable only). *)
  let encode_secded data =
    let code = encode data in
    code @ [ G.xorw code ]

  (* decode_secded -> (data, single_corrected, double_detected) *)
  let decode_secded code8 =
    match code8 with
    | [ c1; c2; c3; c4; c5; c6; c7; p ] ->
      let code = [ c1; c2; c3; c4; c5; c6; c7 ] in
      let data, syndrome_nonzero = decode code in
      let overall = xor2 (G.xorw code) p in
      (* single error: overall parity trips (error in the 8 bits, odd
         count).  double error: syndrome nonzero but parity balanced. *)
      let single = overall in
      let double = and2 syndrome_nonzero (inv overall) in
      (data, single, double)
    | _ -> invalid_arg "Ecc.decode_secded: need 8 code bits"
end

(* The graceful-degradation demo datapath (the fault-campaign showcase):
   the same 4-bit value registered two ways — through a SECDED codeword
   register whose decoder corrects any single upset, and through a bare
   two-stage pipeline with nothing to catch one. *)
module Protected (S : Hydra_core.Signal_intf.CLOCKED) = struct
  module E = Make (S)

  let secded_reg data = E.decode_secded (List.map S.dff (E.encode_secded data))
  let plain_pipeline data = List.map (fun d -> S.dff (S.dff d)) data
end
