(** Hamming(7,4) error correction, plus the extended SECDED code.  The
    codeword layout is the classic [p1; p2; d1; p4; d2; d3; d4] with
    parity bits at the power-of-two positions. *)

module Make (S : Hydra_core.Signal_intf.COMB) : sig
  val encode : S.t list -> S.t list
  (** 4 data bits to a 7-bit codeword. *)

  val decode : S.t list -> S.t list * S.t
  (** [(corrected data, error_detected)]: corrects any single-bit error. *)

  val encode_secded : S.t list -> S.t list
  (** 4 data bits to 8 bits (overall parity appended). *)

  val decode_secded : S.t list -> S.t list * S.t * S.t
  (** [(data, single_error_corrected, double_error_detected)]. *)
end

(** The graceful-degradation demo datapath (fault-campaign showcase):
    the same 4-bit value registered through a SECDED-protected codeword
    register and through a bare pipeline, so single-bit upsets are
    corrected on one path and propagate on the other. *)
module Protected (S : Hydra_core.Signal_intf.CLOCKED) : sig
  val secded_reg : S.t list -> S.t list * S.t * S.t
  (** Encode 4 data bits, register the 8-bit codeword, decode:
      [(data, single, double)].  A one-cycle upset in the codeword
      register is corrected combinationally and overwritten at the next
      clock edge. *)

  val plain_pipeline : S.t list -> S.t list
  (** The same value through two raw registers per bit: upsets in either
      stage reach the outputs uncorrected. *)
end
