(* Lane-parallel fault-injection campaigns.

   The robustness question the paper's section 4.2 motivates — how does
   the design behave under conditions you did not intend? — answered at
   engine speed: lane 0 of a word-parallel engine runs the golden
   circuit while every other lane runs a distinct fault, injected at
   runtime through per-lane force masks instead of per-fault netlist
   rewriting and recompilation.  The campaign core addresses the engine
   through a small word-indexed ops record, so the same classification
   loop runs on {!Compiled_wide} (61 faults per pass, the default) or on
   a K-word {!Slab} (62*K - 1 faults per pass, [~engine:(`Slab k)]).
   Fault lists larger than one engine pass chunk over
   {!Sharded.run_tasks}, so the peak rate is (lanes - 1) x domains
   faults per settle pass.

   Every fault is classified against the golden lane:
   - detected: an observable output diverged (with detection latency),
   - latent: outputs never diverged but some dff's final state did,
   - masked: no divergence at all.

   The engines are built with [~optimize:false ~relayout:false
   ~fuse:false] so component indices in force sites match the caller's
   netlist unchanged. *)

module Netlist = Hydra_netlist.Netlist
module W = Hydra_engine.Compiled_wide
module Slab = Hydra_engine.Slab
module Sharded = Hydra_engine.Sharded
module Scheduler = Hydra_engine.Scheduler
module Cache = Hydra_engine.Cache
module Resilience = Hydra_engine.Resilience

type fault =
  | Stuck_at of { site : int; value : bool }
  | Seu of { site : int; at_cycle : int }
  | Intermittent of { site : int; rate : float; seed : int }

type classification =
  | Detected of { latency : int; cycle : int; output : string }
  | Latent
  | Masked

type verdict = {
  fault : fault;
  name : string;
  classification : classification;
  status : (string * bool) list;
}

type report = {
  netlist : Netlist.t;
  stimulus : (string * bool list) list;
  cycles : int;
  total : int;
  detected : int;
  latent : int;
  masked : int;
  verdicts : verdict list;
}

let site_of = function
  | Stuck_at { site; _ } | Seu { site; _ } | Intermittent { site; _ } -> site

let fault_name nl fault =
  let d = Netlist.describe nl (site_of fault) in
  match fault with
  | Stuck_at { value; _ } -> Printf.sprintf "%s stuck-at-%d" d (Bool.to_int value)
  | Seu { at_cycle; _ } -> Printf.sprintf "%s seu@%d" d at_cycle
  | Intermittent { rate; seed; _ } ->
    Printf.sprintf "%s intermittent(rate=%g,seed=%d)" d rate seed

(* Enumerators.  [all_stuck_at] preserves the historic {!Fault} order
   (site ascending, stuck-at-0 before stuck-at-1) so reports line up
   with the legacy coverage API. *)

let all_stuck_at nl =
  let fs = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
      | Netlist.Dffc _ ->
        fs :=
          Stuck_at { site = i; value = true }
          :: Stuck_at { site = i; value = false }
          :: !fs
      | Netlist.Inport _ | Netlist.Outport _ | Netlist.Constant _ -> ())
    nl.Netlist.components;
  List.rev !fs

let dff_sites nl =
  let ds = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with Netlist.Dffc _ -> ds := i :: !ds | _ -> ())
    nl.Netlist.components;
  List.rev !ds

let all_seu ?(at_cycle = 0) nl =
  List.map (fun site -> Seu { site; at_cycle }) (dff_sites nl)

let seu_sweep nl ~cycles =
  List.concat_map
    (fun site -> List.init cycles (fun c -> Seu { site; at_cycle = c }))
    (dff_sites nl)

(* Stimulus: one bool stream per input port, consumed cycle by cycle
   (missing ports idle at false, short streams pad with false). *)

let stimulus_of_vectors ?(cycles_per_vector = 1) nl vectors =
  let names = List.map fst nl.Netlist.inputs in
  let rows = List.map Array.of_list vectors in
  ( List.mapi
      (fun k name ->
        ( name,
          List.concat_map
            (fun row -> List.init cycles_per_vector (fun _ -> row.(k)))
            rows ))
      names,
    cycles_per_vector * List.length vectors )

let random_stimulus ~seed ~cycles nl =
  let st = Random.State.make [| 0x5eed; seed; cycles |] in
  List.map
    (fun (name, _) -> (name, List.init cycles (fun _ -> Random.State.bool st)))
    nl.Netlist.inputs

(* The word-indexed face the classification loop drives.  A fault's
   force masks are accumulated in a [pending] (one 62-bit word per
   engine word) and installed all at once; intermittent faults then
   mutate their pending's flip masks per cycle and call [o_sync_flips]
   (a no-op on engines that share the arrays by reference). *)
type pending = { p_site : int; p0 : int array; p1 : int array; pf : int array }

type ops = {
  o_words : int;
  o_reset : unit -> unit;
  o_settle : unit -> unit;
  o_tick : unit -> unit;
  o_poke : int -> int -> int -> unit;  (* site, word, packed value *)
  o_peek : int -> int -> int;  (* site, word *)
  o_install : pending array -> unit;
  o_sync_flips : pending array -> unit;
  o_clear : unit -> unit;
}

let wide_ops sim =
  let installed = ref [||] in
  {
    o_words = 1;
    o_reset = (fun () -> W.reset sim);
    o_settle = (fun () -> W.settle sim);
    o_tick = (fun () -> W.tick sim);
    o_poke = (fun site _ v -> W.poke sim site v);
    o_peek = (fun site _ -> W.peek sim site);
    o_install =
      (fun ps ->
        installed :=
          Array.map
            (fun p ->
              {
                W.f_site = p.p_site;
                force0 = p.p0.(0);
                force1 = p.p1.(0);
                flip = p.pf.(0);
              })
            ps;
        W.set_forces sim !installed);
    (* the wide force masks are plain ints, so flip updates are copied
       through to the installed records *)
    o_sync_flips =
      (fun ps -> Array.iteri (fun i p -> !installed.(i).W.flip <- p.pf.(0)) ps);
    o_clear = (fun () -> W.clear_forces sim);
  }

let slab_ops sim =
  {
    o_words = Slab.k sim;
    o_reset = (fun () -> Slab.reset sim);
    o_settle = (fun () -> Slab.settle sim);
    o_tick = (fun () -> Slab.tick sim);
    o_poke = (fun site w v -> Slab.poke_word sim site w v);
    o_peek = (fun site w -> Slab.peek_word sim site w);
    o_install =
      (fun ps ->
        Slab.set_forces sim
          (Array.map
             (fun p ->
               { Slab.f_site = p.p_site; force0 = p.p0; force1 = p.p1; flip = p.pf })
             ps));
    (* the slab keeps the caller's mask arrays by reference: pending flip
       mutations are already live *)
    o_sync_flips = (fun _ -> ());
    o_clear = (fun () -> Slab.clear_forces sim);
  }

let run ?scheduler ?cache ?sharded ?domains ?(engine = `Wide)
    ?(gating = false) ?(status_outputs = []) ?deadline ?retry ?admission ?chaos
    nl ~faults ~stimulus ~cycles =
  (match (scheduler, domains) with
  | Some _, Some _ ->
    invalid_arg "Campaign.run: pass either ?scheduler or ?domains, not both"
  | _ -> ());
  (match engine with
  | `Wide when gating ->
    invalid_arg "Campaign.run: ?gating requires ~engine:(`Slab k)"
  | _ -> ());
  (match Netlist.validate nl with
  | Ok () -> ()
  | Error e -> invalid_arg ("Campaign.run: invalid netlist: " ^ e));
  let n = Netlist.size nl in
  List.iter
    (fun f ->
      let site = site_of f in
      if site < 0 || site >= n then
        invalid_arg "Campaign.run: fault site out of range";
      match (f, nl.Netlist.components.(site)) with
      | _, Netlist.Outport _ ->
        invalid_arg "Campaign.run: cannot fault an outport"
      | Seu _, Netlist.Dffc _ -> ()
      | Seu _, _ ->
        invalid_arg
          (Printf.sprintf "Campaign.run: SEU site %d is not a dff" site)
      | Intermittent { rate; _ }, _ when not (rate >= 0.0 && rate <= 1.0) ->
        invalid_arg "Campaign.run: intermittent rate outside [0,1]"
      | _ -> ())
    faults;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name nl.Netlist.inputs) then
        invalid_arg ("Campaign.run: stimulus for unknown input " ^ name))
    stimulus;
  (* one broadcast word per cycle per declared input *)
  let streams =
    Array.of_list
      (List.map
         (fun (name, site) ->
           let words = Array.make (max cycles 1) 0 in
           (match List.assoc_opt name stimulus with
           | None -> ()
           | Some bits ->
             List.iteri
               (fun c b -> if c < cycles && b then words.(c) <- W.lane_mask)
               bits);
           (site, words))
         nl.Netlist.inputs)
  in
  let status_sites =
    Array.of_list
      (List.map
         (fun name ->
           match List.assoc_opt name nl.Netlist.outputs with
           | Some site -> (name, site)
           | None -> invalid_arg ("Campaign.run: unknown status output " ^ name))
         status_outputs)
  in
  let compare_sites =
    Array.of_list
      (List.filter
         (fun (name, _) -> not (List.mem name status_outputs))
         nl.Netlist.outputs)
  in
  let dffs = Array.of_list (dff_sites nl) in
  let faults_arr = Array.of_list faults in
  let nfaults = Array.length faults_arr in
  let results = Array.make (max nfaults 1) None in
  let run_chunk ops lo hi =
    (* fault lo+k rides global lane k+1 — word (k+1)/62, bit (k+1) mod
       62 — while word 0 bit 0 stays golden *)
    let words = ops.o_words in
    let count = hi - lo in
    let word_of k = (k + 1) / W.lanes in
    let bit_of k = 1 lsl ((k + 1) mod W.lanes) in
    let live = Array.make words 0 in
    for k = 0 to count - 1 do
      live.(word_of k) <- live.(word_of k) lor bit_of k
    done;
    ops.o_clear ();
    ops.o_reset ();
    let pendings = ref [] and seus = ref [] and inters = ref [] in
    for k = 0 to count - 1 do
      let wk = word_of k and bit = bit_of k in
      match faults_arr.(lo + k) with
      | Stuck_at { site; value } ->
        let p =
          {
            p_site = site;
            p0 = Array.make words 0;
            p1 = Array.make words 0;
            pf = Array.make words 0;
          }
        in
        if value then p.p1.(wk) <- bit else p.p0.(wk) <- bit;
        pendings := p :: !pendings
      | Seu { site; at_cycle } -> seus := (at_cycle, site, wk, bit) :: !seus
      | Intermittent { site; rate; seed } ->
        let p =
          {
            p_site = site;
            p0 = Array.make words 0;
            p1 = Array.make words 0;
            pf = Array.make words 0;
          }
        in
        pendings := p :: !pendings;
        (* seeded per fault, not per chunk, so results are independent of
           how faults land on chunks and members *)
        inters := (p, wk, bit, rate, Random.State.make [| seed; site |]) :: !inters
    done;
    let pendings = Array.of_list (List.rev !pendings) in
    ops.o_install pendings;
    let seus = !seus and inters = !inters in
    let det_cycle = Array.make (max count 1) (-1) in
    let det_out = Array.make (max count 1) "" in
    let undet = Array.copy live in
    let status_acc = Array.make_matrix (max (Array.length status_sites) 1) words 0 in
    for cycle = 0 to cycles - 1 do
      for i = 0 to Array.length streams - 1 do
        let site, svs = streams.(i) in
        let v = svs.(cycle) in
        for w = 0 to words - 1 do
          ops.o_poke site w v
        done
      done;
      List.iter
        (fun (c, site, wk, bit) ->
          if c = cycle then ops.o_poke site wk (ops.o_peek site wk lxor bit))
        seus;
      if inters <> [] then begin
        List.iter
          (fun (p, wk, bit, rate, st) ->
            p.pf.(wk) <- (if Random.State.float st 1.0 < rate then bit else 0))
          inters;
        ops.o_sync_flips pendings
      end;
      ops.o_settle ();
      (if Array.exists (fun m -> m <> 0) undet then
         for o = 0 to Array.length compare_sites - 1 do
           let oname, osite = compare_sites.(o) in
           (* golden is word 0, bit 0, sign-extended across every word:
              set bits = lanes that differ from the golden lane *)
           let gext = -(ops.o_peek osite 0 land 1) in
           for w = 0 to words - 1 do
             let diff = (ops.o_peek osite w lxor gext) land undet.(w) in
             if diff <> 0 then begin
               for k = 0 to count - 1 do
                 if word_of k = w && diff land bit_of k <> 0 then begin
                   det_cycle.(k) <- cycle;
                   det_out.(k) <- oname
                 end
               done;
               undet.(w) <- undet.(w) land lnot diff
             end
           done
         done);
      for si = 0 to Array.length status_sites - 1 do
        let ssite = snd status_sites.(si) in
        for w = 0 to words - 1 do
          status_acc.(si).(w) <- status_acc.(si).(w) lor ops.o_peek ssite w
        done
      done;
      ops.o_tick ()
    done;
    (* latent: some dff's final state differs from the golden lane even
       though no output ever did.  Only the final state counts — an upset
       that the circuit heals (e.g. an ECC reload) is masked. *)
    let state_diff = Array.make words 0 in
    Array.iter
      (fun site ->
        let gext = -(ops.o_peek site 0 land 1) in
        for w = 0 to words - 1 do
          state_diff.(w) <-
            state_diff.(w) lor ((ops.o_peek site w lxor gext) land live.(w))
        done)
      dffs;
    for k = 0 to count - 1 do
      let wk = word_of k and bit = bit_of k in
      let fault = faults_arr.(lo + k) in
      let classification =
        if det_cycle.(k) >= 0 then
          let injection =
            match fault with
            | Seu { at_cycle; _ } -> at_cycle
            | Stuck_at _ | Intermittent _ -> 0
          in
          Detected
            {
              latency = det_cycle.(k) - injection;
              cycle = det_cycle.(k);
              output = det_out.(k);
            }
        else if state_diff.(wk) land bit <> 0 then Latent
        else Masked
      in
      let status =
        Array.to_list
          (Array.mapi
             (fun si (sname, _) -> (sname, status_acc.(si).(wk) land bit <> 0))
             status_sites)
      in
      results.(lo + k) <-
        Some { fault; name = fault_name nl fault; classification; status }
    done;
    ops.o_clear ()
  in
  (match engine with
  | `Slab k when k < 1 -> invalid_arg "Campaign.run: slab k must be >= 1"
  | _ -> ());
  (* Resilience knobs.  The deadline is a wall budget over the whole
     campaign; scheduler runs carry it (and the retry policy) on the
     job, direct runs enforce it at chunk boundaries with a local
     retry loop.  The admission controller may degrade a slab request
     to fewer words (fewer faults per pass, same results) before it
     would shed the campaign outright. *)
  let t0 = Resilience.now () in
  let check_deadline () =
    match deadline with
    | Some d when Resilience.now () -. t0 > d ->
      raise
        (Resilience.Deadline_exceeded
           { job = "campaign"; elapsed = Resilience.now () -. t0 })
    | _ -> ()
  in
  let sched_deadline () =
    Option.map (fun d -> Float.max 0.001 (d -. (Resilience.now () -. t0))) deadline
  in
  let acquired =
    match admission with
    | None -> None
    | Some a -> (
      let want =
        W.lanes * (match engine with `Wide -> 1 | `Slab k -> k)
      in
      match Resilience.acquire a ~lanes:want with
      | `Granted g -> Some (a, g)
      | `Shed -> raise (Resilience.Shed { job = "campaign"; priority = 0 }))
  in
  let engine =
    match (acquired, engine) with
    | Some (_, g), `Slab k when g < W.lanes * k ->
      `Slab (max 1 (g / W.lanes))  (* degraded, not rejected *)
    | _ -> engine
  in
  Fun.protect
    ~finally:(fun () ->
      match acquired with
      | Some (a, g) -> Resilience.release a ~lanes:g
      | None -> ())
    (fun () ->
      let engine_words = match engine with `Wide -> 1 | `Slab k -> k in
      (* lane 0 of every chunk is the golden run, hence [~reserved:1] *)
      let ch =
        Scheduler.chunking ~reserved:1 ~lanes:(W.lanes * engine_words) nfaults
      in
      let nchunks = ch.Scheduler.count in
      let chunk_bounds = ch.Scheduler.bounds in
      (* dress a chunk body with the resilience wrappers: a chaos
         injection point at entry (each retry re-rolls its fate), a
         chunk-boundary deadline check, and — when no scheduler carries
         the retry policy natively — a local backoff-and-rerun loop
         (chunks recompute their result slice from reset, so a rerun is
         bit-identical) *)
      let dress body ~member c =
        check_deadline ();
        let attempt_body () =
          (match chaos with
          | Some p -> Chaos.inject p ~label:"campaign" ~task:c ()
          | None -> ());
          body ~member c
        in
        match (scheduler, retry) with
        | Some _, _ | None, None -> attempt_body ()
        | None, Some pol ->
          let rec go attempt =
            try attempt_body ()
            with e
              when attempt < pol.Resilience.max_attempts
                   && pol.Resilience.transient e ->
              Unix.sleepf (Resilience.backoff pol ~attempt ~seed:(0xca3 + c));
              check_deadline ();
              go (attempt + 1)
          in
          go 1
      in
      (* engines always compile with the identity passes (force sites
         are caller-netlist component indices); [?cache] serves warm
         replicas *)
      let wide_base () =
        match cache with
        | Some c -> Cache.wide c ~optimize:false ~relayout:false ~fuse:false nl
        | None -> W.create ~optimize:false ~relayout:false ~fuse:false nl
      in
      let slab_base k =
        match cache with
        | Some c ->
          Cache.slab c ~k ~gating ~optimize:false ~relayout:false ~fuse:false
            nl
        | None ->
          Slab.create ~k ~gating ~optimize:false ~relayout:false ~fuse:false nl
      in
      let run_sharded sh =
        if Sharded.netlist sh <> nl then
          invalid_arg
            "Campaign.run: sharded engine compiled from a different netlist \
             (build it with ~optimize:false ~relayout:false ~fuse:false on \
             the campaign netlist)";
        let body ~member c =
          let lo, hi = chunk_bounds c in
          run_chunk (wide_ops (Sharded.replica sh member)) lo hi
        in
        match scheduler with
        | Some sch ->
          if Scheduler.pool sch != Sharded.pool sh then
            invalid_arg
              "Campaign.run: ?scheduler and ?sharded must share one pool \
               (Sharded.of_base ~pool:(Scheduler.pool sch))";
          Scheduler.run_tasks sch ~name:"campaign" ?deadline:(sched_deadline ())
            ?retry nchunks (dress body)
        | None -> Sharded.run_tasks sh nchunks (dress body)
      in
      match (engine, sharded) with
      | `Slab _, Some _ ->
        invalid_arg
          "Campaign.run: ?sharded reuses a wide engine; pass ?domains with \
           ~engine:(`Slab k) instead"
      | `Slab k, None ->
        if nchunks > 0 then begin
          let base = slab_base k in
          let module SSh = Sharded.Slab_sharded in
          let body ssh ~member c =
            let lo, hi = chunk_bounds c in
            run_chunk (slab_ops (SSh.replica ssh member)) lo hi
          in
          match scheduler with
          | Some sch ->
            let ssh = SSh.of_base ~pool:(Scheduler.pool sch) base in
            Scheduler.run_tasks sch ~name:"campaign"
              ?deadline:(sched_deadline ()) ?retry nchunks (dress (body ssh))
          | None ->
            let ssh = SSh.of_base ?domains base in
            Fun.protect
              ~finally:(fun () -> SSh.shutdown ssh)
              (fun () -> SSh.run_tasks ssh nchunks (dress (body ssh)))
        end
      | `Wide, Some sh -> run_sharded sh
      | `Wide, None ->
        if Option.is_none scheduler && Option.is_none domains && nchunks <= 1
        then begin
          if nchunks = 1 then begin
            let sim = wide_base () in
            let body ~member:_ c =
              let lo, hi = chunk_bounds c in
              run_chunk (wide_ops sim) lo hi
            in
            dress body ~member:0 0
          end
        end
        else if nchunks > 0 then begin
          match scheduler with
          | Some sch ->
            run_sharded
              (Sharded.of_base ~pool:(Scheduler.pool sch) (wide_base ()))
          | None ->
            let sh = Sharded.of_base ?domains (wide_base ()) in
            Fun.protect
              ~finally:(fun () -> Sharded.shutdown sh)
              (fun () -> run_sharded sh)
        end);
  let verdicts =
    List.init nfaults (fun i ->
        match results.(i) with
        | Some v -> v
        | None -> assert false (* every chunk writes its slice *))
  in
  let count p =
    List.length (List.filter (fun v -> p v.classification) verdicts)
  in
  {
    netlist = nl;
    stimulus;
    cycles;
    total = nfaults;
    detected = count (function Detected _ -> true | _ -> false);
    latent = count (function Latent -> true | _ -> false);
    masked = count (function Masked -> true | _ -> false);
    verdicts;
  }

let replay report fault =
  let status_outputs =
    match report.verdicts with
    | v :: _ -> List.map fst v.status
    | [] -> []
  in
  let r =
    run ~status_outputs report.netlist ~faults:[ fault ]
      ~stimulus:report.stimulus ~cycles:report.cycles
  in
  List.hd r.verdicts

(* Summaries and renderers. *)

let coverage_ratio r =
  if r.total = 0 then 1.0 else float_of_int r.detected /. float_of_int r.total

let mean_latency r =
  let n = ref 0 and sum = ref 0 in
  List.iter
    (fun v ->
      match v.classification with
      | Detected { latency; _ } ->
        incr n;
        sum := !sum + latency
      | Latent | Masked -> ())
    r.verdicts;
  if !n = 0 then None else Some (float_of_int !sum /. float_of_int !n)

let class_string = function
  | Detected _ -> "detected"
  | Latent -> "latent"
  | Masked -> "masked"

let status_suffix v =
  let on = List.filter_map (fun (n, b) -> if b then Some n else None) v.status in
  if on = [] then "" else " [" ^ String.concat "," on ^ "]"

let verdict_to_string v =
  (match v.classification with
  | Detected { latency; cycle; output } ->
    Printf.sprintf "detected %s: latency %d at cycle %d via %s" v.name latency
      cycle output
  | Latent -> Printf.sprintf "latent   %s" v.name
  | Masked -> Printf.sprintf "masked   %s" v.name)
  ^ status_suffix v

let summary_string r =
  Printf.sprintf
    "fault campaign: %d faults over %d cycles: %d detected (%.1f%%), %d \
     latent, %d masked"
    r.total r.cycles r.detected
    (100.0 *. coverage_ratio r)
    r.latent r.masked

let to_string r =
  String.concat "\n"
    (summary_string r :: List.map (fun v -> "  " ^ verdict_to_string v) r.verdicts)

(* JSON: the [hydra faults --json] contract, pinned by a test. *)

let js = Hydra_analyze.Diagnostic.json_string

let verdict_to_json v =
  let model =
    match v.fault with
    | Stuck_at { site; value } ->
      Printf.sprintf "\"model\":\"stuck_at\",\"site\":%d,\"value\":%d" site
        (Bool.to_int value)
    | Seu { site; at_cycle } ->
      Printf.sprintf "\"model\":\"seu\",\"site\":%d,\"at_cycle\":%d" site
        at_cycle
    | Intermittent { site; rate; seed } ->
      Printf.sprintf "\"model\":\"intermittent\",\"site\":%d,\"rate\":%g,\"seed\":%d"
        site rate seed
  in
  let cls =
    match v.classification with
    | Detected { latency; cycle; output } ->
      Printf.sprintf "\"class\":\"detected\",\"latency\":%d,\"cycle\":%d,\"output\":%s"
        latency cycle (js output)
    | Latent -> "\"class\":\"latent\""
    | Masked -> "\"class\":\"masked\""
  in
  let status =
    if v.status = [] then ""
    else
      ",\"status\":{"
      ^ String.concat ","
          (List.map (fun (n, b) -> Printf.sprintf "%s:%b" (js n) b) v.status)
      ^ "}"
  in
  Printf.sprintf "{\"name\":%s,%s,%s%s}" (js v.name) model cls status

let to_json r =
  Printf.sprintf
    "{\"version\":1,\"total\":%d,\"detected\":%d,\"latent\":%d,\"masked\":%d,\"cycles\":%d,\"verdicts\":[%s]}"
    r.total r.detected r.latent r.masked r.cycles
    (String.concat "," (List.map verdict_to_json r.verdicts))
