(* Combinational equivalence checking.

   Three methods, strongest first:
   - [bdd_equiv]: symbolic — execute both circuits at a BDD semantics (one
     more instance of the paper's "apply the specification to a different
     signal type" idea) and compare canonical forms.  Complete.
   - [exhaustive]: enumerate all input vectors at the Bit semantics.
     Complete, exponential.
   - [random]: sample vectors; a cheap falsifier. *)

module Bit = Hydra_core.Bit
module Netlist = Hydra_netlist.Netlist

(* A COMB instance whose signals are BDDs over a given manager: executing
   a circuit at this instance computes its boolean function symbolically. *)
module type BDD_COMB = sig
  include Hydra_core.Signal_intf.COMB with type t = Bdd.t

  val manager : Bdd.manager
end

let bdd_comb m : (module BDD_COMB) =
  (module struct
    type t = Bdd.t

    let manager = m
    let zero = Bdd.bfalse
    let one = Bdd.btrue
    let constant = Bdd.of_bool
    let inv = Bdd.bdd_not m
    let and2 = Bdd.bdd_and m
    let or2 = Bdd.bdd_or m
    let xor2 = Bdd.bdd_xor m
    let label _ s = s
  end)

(* A circuit abstracted over its semantics — the form every Hydra circuit
   naturally has.  The polymorphic field lets one circuit value be executed
   at the Bit semantics (testing) and the BDD semantics (proof) alike. *)
type circuit = {
  apply :
    'a.
    (module Hydra_core.Signal_intf.COMB with type t = 'a) ->
    'a list ->
    'a list;
}

type counterexample = bool list

type result = Equivalent | Inequivalent of counterexample

(* Symbolic check of two [inputs]-input circuits (any number of outputs):
   build both functions as BDDs and compare canonical forms. *)
let bdd_equiv ~inputs c1 c2 =
  let m = Bdd.manager () in
  let (module C) = bdd_comb m in
  let vars = List.init inputs (Bdd.var m) in
  let fo = c1.apply (module C) vars and go = c2.apply (module C) vars in
  if List.length fo <> List.length go then
    invalid_arg "Equiv.bdd_equiv: output arities differ";
  let diff =
    List.fold_left2
      (fun acc a b -> Bdd.bdd_or m acc (Bdd.bdd_xor m a b))
      Bdd.bfalse fo go
  in
  match Bdd.any_sat diff with
  | None -> Equivalent
  | Some partial ->
    let assign v =
      match List.assoc_opt v partial with Some b -> b | None -> false
    in
    Inequivalent (List.init inputs assign)

(* Symbolic functions of a circuit: output BDDs over fresh variables, plus
   the manager (for further queries such as sat counts). *)
let bdd_outputs ~inputs c =
  let m = Bdd.manager () in
  let (module C) = bdd_comb m in
  let vars = List.init inputs (Bdd.var m) in
  (m, c.apply (module C) vars)

let exhaustive ~inputs c1 c2 =
  let f = c1.apply (module Bit) and g = c2.apply (module Bit) in
  let rec find = function
    | [] -> Equivalent
    | v :: rest -> if f v = g v then find rest else Inequivalent v
  in
  find (Bit.vectors inputs)

(* Shared lane-parallel core: evaluate both circuits on one pass of
   packed words, compare the first [count] lanes, return the first
   differing lane's assignment if any. *)
let packed_pass ~what c1 c2 (words, count) =
  let module P = Hydra_core.Packed in
  let o1 = c1.apply (module P) words and o2 = c2.apply (module P) words in
  if List.length o1 <> List.length o2 then
    invalid_arg (what ^ ": output arities differ");
  let mask = P.mask_of_count count in
  let diff =
    List.fold_left2 (fun acc a b -> acc lor (P.xor2 a b land mask)) 0 o1 o2
  in
  if diff = 0 then None
  else begin
    (* first differing lane is the counterexample *)
    let rec first_lane l = if P.lane diff l then l else first_lane (l + 1) in
    let lane = first_lane 0 in
    Some (List.map (fun w -> P.lane w lane) words)
  end

(* Exhaustive check at the packed semantics: 62 assignments per circuit
   evaluation — typically ~50x faster than {!exhaustive} for the same
   complete guarantee.  The pass stream is lazy, so a counterexample
   stops the sweep early without having materialized the rest. *)
let packed_exhaustive ~inputs c1 c2 =
  let passes = Hydra_core.Packed.enumerate ~inputs in
  let rec scan s =
    match s () with
    | Seq.Nil -> Equivalent
    | Seq.Cons (pass, rest) -> (
        match packed_pass ~what:"Equiv.packed_exhaustive" c1 c2 pass with
        | None -> scan rest
        | Some v -> Inequivalent v)
  in
  scan passes

(* Random sampling at the packed semantics: each circuit evaluation
   tests 62 random assignments at once, so [trials] vectors cost
   ceil(trials/62) passes — the cheap falsifier at 1/62nd the price. *)
let packed_random ?(trials = 1000) ~inputs c1 c2 =
  let module P = Hydra_core.Packed in
  let st = Random.State.make [| 0x5eed; inputs; trials |] in
  let rec go remaining =
    if remaining <= 0 then Equivalent
    else begin
      let count = min P.lanes remaining in
      let words =
        List.init inputs (fun _ ->
            let w = ref 0 in
            for l = 0 to count - 1 do
              if Random.State.bool st then w := !w lor (1 lsl l)
            done;
            !w)
      in
      match packed_pass ~what:"Equiv.packed_random" c1 c2 (words, count) with
      | None -> go (remaining - count)
      | Some v -> Inequivalent v
    end
  in
  go trials

(* Sequential random equivalence of two netlists with the same port
   names, run on the wide engine: every pass drives 62 random stimulus
   streams into both circuits simultaneously and compares every output
   word every cycle — ~60x fewer simulator passes than lane-at-a-time
   sampling.  This is the workhorse check for optimized-vs-original
   netlists (both engines see the same packed inputs, dffs included). *)
type seq_result =
  | Seq_equivalent
  | Seq_mismatch of { output : string; cycle : int; inputs : (string * bool list) list }

let wide_random_netlists ?scheduler ?cache ?(passes = 8) ?(cycles = 32)
    ?(seed = 0x5eed) ?(domains = 1) ?deadline nl1 nl2 =
  let module W = Hydra_engine.Compiled_wide in
  let module Sh = Hydra_engine.Sharded in
  let module Scheduler = Hydra_engine.Scheduler in
  let module Cache = Hydra_engine.Cache in
  let module R = Hydra_engine.Resilience in
  let module P = Hydra_core.Packed in
  (* the deadline bounds the whole sweep, enforced between passes (a
     pass is the natural chunk); scheduler runs put it on the job *)
  let t0 = R.now () in
  let check_deadline () =
    match deadline with
    | Some d when R.now () -. t0 > d ->
      raise
        (R.Deadline_exceeded { job = "equiv"; elapsed = R.now () -. t0 })
    | _ -> ()
  in
  (* Certify the inputs before simulating them, so a falsified run means
     "the engines disagree" and never "the generator emitted a malformed
     netlist that the engines mis-indexed". *)
  List.iter
    (fun (which, nl) ->
      match Hydra_analyze.Certify.validate nl with
      | Ok () -> ()
      | Error reason ->
        invalid_arg
          (Printf.sprintf "Equiv.wide_random_netlists: invalid netlist %s (%s)"
             which reason))
    [ ("nl1", nl1); ("nl2", nl2) ];
  let in_names = List.map fst nl1.Netlist.inputs in
  if List.sort compare in_names <> List.sort compare (List.map fst nl2.Netlist.inputs)
  then invalid_arg "Equiv.wide_random_netlists: input ports differ";
  let out_names = List.map fst nl1.Netlist.outputs in
  if
    List.sort compare out_names
    <> List.sort compare (List.map fst nl2.Netlist.outputs)
  then invalid_arg "Equiv.wide_random_netlists: output ports differ";
  (* both sides' replicas are kept member-aligned by hand through the
     fan-out's ~member index; [?cache] serves warm default-flavor wide
     engines (same compile flags as W.create's defaults) *)
  let mk nl =
    match cache with Some c -> Cache.wide c nl | None -> W.create nl
  in
  let base1 = mk nl1 in
  let base2 = mk nl2 in
  let results = Array.make passes Seq_equivalent in
  (* lowest pass index with a recorded mismatch; later passes that have
     not started yet are skipped once a lower one is recorded, so the
     reported mismatch is deterministic regardless of scheduling *)
  let best = Atomic.make max_int in
  let rec record_min pass =
    let cur = Atomic.get best in
    if pass < cur && not (Atomic.compare_and_set best cur pass) then
      record_min pass
  in
  let run_pass s1 s2 pass =
    (* an independent RNG per pass: the stimulus of pass [p] does not
       depend on which member runs it or in what order *)
    let st = Random.State.make [| seed; pass; cycles |] in
    W.reset s1;
    W.reset s2;
    (* record the stimulus so a mismatch can report the failing lane's
       input streams up to the failing cycle *)
    let history = ref [] in
    try
      for c = 0 to cycles - 1 do
        let row = List.map (fun name -> (name, P.random_word st)) in_names in
        history := row :: !history;
        List.iter
          (fun (name, w) ->
            W.set_input s1 name w;
            W.set_input s2 name w)
          row;
        W.settle s1;
        W.settle s2;
        List.iter
          (fun name ->
            let w1 = W.output s1 name and w2 = W.output s2 name in
            if w1 <> w2 then begin
              let diff = w1 lxor w2 in
              let rec first_lane l =
                if P.lane diff l then l else first_lane (l + 1)
              in
              let lane = first_lane 0 in
              let streams =
                List.map
                  (fun iname ->
                    ( iname,
                      List.rev_map
                        (fun row -> P.lane (List.assoc iname row) lane)
                        !history ))
                  in_names
              in
              results.(pass) <-
                Seq_mismatch { output = name; cycle = c; inputs = streams };
              record_min pass;
              raise Exit
            end)
          out_names;
        W.tick s1;
        W.tick s2
      done
    with Exit -> ()
  in
  let replicas base n =
    Array.init n (fun i -> if i = 0 then base else W.replicate base)
  in
  (match scheduler with
  | Some sch ->
    let n = Scheduler.domains sch in
    let sims1 = replicas base1 n and sims2 = replicas base2 n in
    Scheduler.run_tasks sch ~name:"equiv" ?deadline passes
      (fun ~member pass ->
        if pass < Atomic.get best then
          run_pass sims1.(member) sims2.(member) pass)
  | None ->
    let sh = Sh.of_base ~domains base1 in
    let sims2 = replicas base2 (Sh.domains sh) in
    Sh.run_tasks sh passes (fun ~member pass ->
        check_deadline ();
        if pass < Atomic.get best then
          run_pass (Sh.replica sh member) sims2.(member) pass);
    Sh.shutdown sh);
  match Atomic.get best with
  | p when p < max_int -> results.(p)
  | _ -> Seq_equivalent

(* Engine-vs-engine sequential random equivalence: the same check as
   {!wide_random_netlists}, but each side runs on an arbitrary
   {!Hydra_engine.Engine_intf.S} handle, so a K-word {!Hydra_engine.Slab}
   can be cross-checked against the 1-word wide engine (or any two
   engines against each other).  The stimulus cube is materialized up
   front per pass — [max words1 words2] packed words per input per cycle
   — and an engine with fewer words consumes it in multiple reset+replay
   rounds, so every global lane of the wider engine is compared against a
   genuinely independent simulation on the narrower one. *)
let engine_random_netlists ?(passes = 4) ?(cycles = 32) ?(seed = 0x5eed)
    (e1 : (module Hydra_engine.Engine_intf.S))
    (e2 : (module Hydra_engine.Engine_intf.S)) nl1 nl2 =
  let module P = Hydra_core.Packed in
  List.iter
    (fun (which, nl) ->
      match Hydra_analyze.Certify.validate nl with
      | Ok () -> ()
      | Error reason ->
        invalid_arg
          (Printf.sprintf
             "Equiv.engine_random_netlists: invalid netlist %s (%s)" which
             reason))
    [ ("nl1", nl1); ("nl2", nl2) ];
  let in_names = List.map fst nl1.Netlist.inputs in
  if List.sort compare in_names <> List.sort compare (List.map fst nl2.Netlist.inputs)
  then invalid_arg "Equiv.engine_random_netlists: input ports differ";
  let out_names = List.map fst nl1.Netlist.outputs in
  if
    List.sort compare out_names
    <> List.sort compare (List.map fst nl2.Netlist.outputs)
  then invalid_arg "Equiv.engine_random_netlists: output ports differ";
  let nout = List.length out_names in
  let out_arr = Array.of_list out_names in
  let module Run (E : Hydra_engine.Engine_intf.S) = struct
    (* Replay the whole stimulus cube on [sim], [words sim] global word
       indices per round, and return the output cube
       [cube.(cycle).(out).(global_word)].  Global words beyond the cube
       (when [wmax mod words <> 0]) are driven with 0 and ignored. *)
    let collect sim ~wmax ~stim =
      let we = E.words sim in
      let rounds = (wmax + we - 1) / we in
      let cube =
        Array.init cycles (fun _ -> Array.make_matrix nout wmax 0)
      in
      for r = 0 to rounds - 1 do
        E.reset sim;
        for c = 0 to cycles - 1 do
          List.iter
            (fun (name, ws) ->
              for lw = 0 to we - 1 do
                let g = (r * we) + lw in
                E.set_input_word sim name lw (if g < wmax then ws.(g) else 0)
              done)
            stim.(c);
          E.settle sim;
          for o = 0 to nout - 1 do
            for lw = 0 to we - 1 do
              let g = (r * we) + lw in
              if g < wmax then
                cube.(c).(o).(g) <- E.output_word sim out_arr.(o) lw
            done
          done;
          E.tick sim
        done
      done;
      cube
  end in
  let (module E1) = e1 and (module E2) = e2 in
  let module R1 = Run (E1) in
  let module R2 = Run (E2) in
  let s1 = E1.create nl1 and s2 = E2.create nl2 in
  let wmax = max (E1.words s1) (E2.words s2) in
  let result = ref Seq_equivalent in
  (try
     for pass = 0 to passes - 1 do
       (* same per-pass RNG derivation as wide_random_netlists: at
          wmax = 1 the stimulus is identical to the wide check's *)
       let st = Random.State.make [| seed; pass; cycles |] in
       let stim =
         Array.init cycles (fun _ ->
             List.map
               (fun name ->
                 (name, Array.init wmax (fun _ -> P.random_word st)))
               in_names)
       in
       let cube1 = R1.collect s1 ~wmax ~stim in
       let cube2 = R2.collect s2 ~wmax ~stim in
       for c = 0 to cycles - 1 do
         for o = 0 to nout - 1 do
           for g = 0 to wmax - 1 do
             let w1 = cube1.(c).(o).(g) and w2 = cube2.(c).(o).(g) in
             if w1 <> w2 then begin
               let diff = w1 lxor w2 in
               let rec first_bit l =
                 if P.lane diff l then l else first_bit (l + 1)
               in
               let bit = first_bit 0 in
               let streams =
                 List.map
                   (fun iname ->
                     ( iname,
                       List.init (c + 1) (fun cyc ->
                           P.lane (List.assoc iname stim.(cyc)).(g) bit) ))
                   in_names
               in
               result :=
                 Seq_mismatch
                   { output = out_arr.(o); cycle = c; inputs = streams };
               raise Exit
             end
           done
         done
       done
     done
   with Exit -> ());
  !result

(* The acceptance check for the slab engine: K-word slab vs the 1-word
   wide engine on the same netlist. *)
let slab_vs_wide ?passes ?cycles ?seed ?(k = 8) ?gating ?simd ?tuning nl =
  engine_random_netlists ?passes ?cycles ?seed
    (Hydra_engine.Slab.engine ?gating ?simd ?tuning k)
    Hydra_engine.Engine_intf.wide nl nl

let seq_equivalent = function Seq_equivalent -> true | Seq_mismatch _ -> false

(* Translation validation for {!Hydra_engine.Kernel.patch}: run the
   patched program (wide at k = 1, slab otherwise) against an
   independent fresh full compile of its own netlist and wrap the
   verdict as a {!Hydra_analyze.Certify.outcome} — the same contract as
   the compile-time pass certificates, applied to an incremental
   recompile. *)
let certify_patch ?(passes = 4) ?(cycles = 32) ?(seed = 0x5eed)
    (prog : Hydra_engine.Kernel.program) =
  let module K = Hydra_engine.Kernel in
  let module C = Hydra_analyze.Certify in
  let nl = prog.K.netlist in
  let transform = "kernel-patch" in
  match C.validate nl with
  | Error reason ->
    C.Refuted
      { transform; failure = C.Invalid { which = "patched"; reason } }
  | Ok () -> (
    let patched : (module Hydra_engine.Engine_intf.S) =
      if prog.K.k = 1 then
        (module struct
          include Hydra_engine.Compiled_wide

          let name = "patched"

          let create ?optimize:_ ?relayout:_ ?fuse:_ ?certify:_ _ =
            Hydra_engine.Compiled_wide.of_program prog
        end)
      else
        (module struct
          include Hydra_engine.Slab

          let name = "patched"

          let create ?optimize:_ ?relayout:_ ?fuse:_ ?certify:_ _ =
            Hydra_engine.Slab.of_program prog
        end)
    in
    match
      engine_random_netlists ~passes ~cycles ~seed patched
        Hydra_engine.Engine_intf.wide nl nl
    with
    | Seq_equivalent ->
      C.Certified
        {
          transform;
          checks =
            [
              "validate";
              Printf.sprintf "io-equiv-vs-full-compile(passes=%d,cycles=%d)"
                passes cycles;
            ];
        }
    | Seq_mismatch { output; cycle; inputs } ->
      C.Refuted
        {
          transform;
          failure = C.Behaviour_differs { C.output; cycle; inputs };
        })

let random ?(trials = 1000) ~inputs c1 c2 =
  let f = c1.apply (module Bit) and g = c2.apply (module Bit) in
  let st = Random.State.make [| 0x5eed; inputs; trials |] in
  let rec go n =
    if n = 0 then Equivalent
    else
      let v = List.init inputs (fun _ -> Random.State.bool st) in
      if f v = g v then go (n - 1) else Inequivalent v
  in
  go trials

let is_equivalent = function Equivalent -> true | Inequivalent _ -> false
