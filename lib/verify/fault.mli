(** Stuck-at fault simulation: measure how well a test-vector set
    distinguishes a faulty circuit from a good one — the manufacturing-
    test side of the simulation tooling (paper section 4.2).

    Grading runs on the lane-parallel {!Campaign} engine (61 faults per
    pass, chunked across domains) — no per-fault netlist rewriting or
    recompilation — with results bit-identical to the historic loop,
    which survives as {!coverage_recompile}. *)

type fault = { site : int; stuck : bool }

val fault_name : Hydra_netlist.Netlist.t -> fault -> string

val all_faults : Hydra_netlist.Netlist.t -> fault list
(** Both stuck-at values on every gate and flip-flop output. *)

val inject : Hydra_netlist.Netlist.t -> fault -> Hydra_netlist.Netlist.t
(** Netlist rewriting: the site's consumers read a constant instead, so
    any engine can run the faulty circuit. *)

val response :
  Hydra_netlist.Netlist.t ->
  vectors:bool list list ->
  cycles_per_vector:int ->
  bool list list list
(** Output rows per vector per observation cycle (state carries across
    vectors): the comparison record detection is defined over. *)

type coverage = { total : int; detected : int; undetected : fault list }

val ratio : coverage -> float

val coverage :
  ?cycles_per_vector:int ->
  Hydra_netlist.Netlist.t ->
  vectors:bool list list ->
  coverage
(** Fraction of faults whose response to [vectors] (rows in input-port
    order) differs from the good circuit's.  Runs on the {!Campaign}
    engine; bit-identical to {!coverage_recompile}. *)

val coverage_recompile :
  ?cycles_per_vector:int ->
  Hydra_netlist.Netlist.t ->
  vectors:bool list list ->
  coverage
(** The historic implementation — one netlist rewrite and engine
    recompile per fault.  Kept as the bit-identity reference and the
    benchmark baseline. *)

val random_vectors : seed:int -> inputs:int -> int -> bool list list

val generate_tests :
  ?seed:int ->
  ?target:float ->
  ?batch:int ->
  ?max_vectors:int ->
  ?cycles_per_vector:int ->
  Hydra_netlist.Netlist.t ->
  bool list list * coverage
(** Greedy random test generation: grow the vector set until coverage
    reaches [target] or a whole batch detects nothing new.
    [?cycles_per_vector] (default 1) grades sequential circuits on the
    same observation window as {!coverage}; each batch re-simulates only
    the still-undetected faults over the full grown vector list, which
    is bit-identical to grading from scratch (detection is monotone
    under vector-list extension).  Batches grade on one persistent
    {!Hydra_engine.Scheduler} team with campaign engines served by the
    process-wide {!Hydra_engine.Cache}, so repeated generations on the
    same netlist skip recompilation entirely. *)
