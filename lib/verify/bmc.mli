(** Bounded model checking and reachability over netlist state machines —
    the whole circuit viewed as one synchronous state machine whose state
    vector is the flip-flop contents (paper section 3). *)

type violation = {
  depth : int;
  inputs : bool list list;  (** input rows leading to the violation *)
  outputs : (string * bool) list;
}

type result = Holds | Violated of violation

val check :
  ?max_states:int ->
  ?invariants:(int * bool) list ->
  property:string ->
  depth:int ->
  Hydra_netlist.Netlist.t ->
  result
(** Drive every input sequence up to [depth] cycles (breadth-first over
    deduplicated states, so violations are found at minimal depth) and
    fail if the output named [property] is ever 0 after settling.
    Exponential in the number of inputs.

    [invariants] assumes flip flops (by component index) stuck at a
    value — use [Hydra_analyze.Dataflow.stuck_registers] — shrinking
    the snapshot key space.  Each pinned dff must power up at the
    claimed value ([Invalid_argument] otherwise) and is tripwired at
    every snapshot: if simulation ever catches one off its pinned
    value, the search aborts with [Failure] instead of exploring
    unsoundly. *)

val reachable_states :
  ?limit:int ->
  ?invariants:(int * bool) list ->
  Hydra_netlist.Netlist.t ->
  int * bool
(** Reachable flip-flop states from power-up under all inputs; the flag
    reports truncation at [limit].  [invariants] as in {!check}: pinned
    dffs drop out of the state key, so the count ranges over the
    non-constant state bits only. *)

val equiv_sequential :
  ?max_states:int ->
  depth:int ->
  Hydra_netlist.Netlist.t ->
  Hydra_netlist.Netlist.t ->
  result
(** Two netlists with the same input port names produce identical outputs
    on every input sequence of length [depth]. *)
