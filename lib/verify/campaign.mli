(** Lane-parallel fault-injection campaigns: lane 0 of a
    {!Hydra_engine.Compiled_wide} runs the golden circuit while lanes
    1..61 each run a distinct fault injected at runtime through per-lane
    force masks — no per-fault netlist rewriting or recompilation.
    Fault lists larger than one word chunk over
    {!Hydra_engine.Sharded.run_tasks}. *)

type fault =
  | Stuck_at of { site : int; value : bool }
      (** the component's output is forced to [value] on every cycle *)
  | Seu of { site : int; at_cycle : int }
      (** single-event upset: the dff's state bit is flipped just before
          the settle of [at_cycle] (scheduled past the run window, it
          never fires and classifies masked) *)
  | Intermittent of { site : int; rate : float; seed : int }
      (** each cycle, with probability [rate], the output is inverted
          for that whole cycle; the coin stream is seeded per fault so
          results are independent of chunk/domain assignment *)

type classification =
  | Detected of { latency : int; cycle : int; output : string }
      (** first observable output divergence from the golden lane:
          which output, at which cycle, and [cycle - injection_cycle] *)
  | Latent
      (** outputs never diverged within the window but some dff's
          {e final} state did — a healed upset (e.g. an ECC reload)
          counts as masked, not latent *)
  | Masked  (** no divergence at all *)

type verdict = {
  fault : fault;
  name : string;  (** {!fault_name} *)
  classification : classification;
  status : (string * bool) list;
      (** per [status_outputs] flag: ever asserted on this fault's lane *)
}

type report = {
  netlist : Hydra_netlist.Netlist.t;
  stimulus : (string * bool list) list;
      (** kept verbatim so any verdict can be {!replay}ed *)
  cycles : int;
  total : int;
  detected : int;
  latent : int;
  masked : int;
  verdicts : verdict list;  (** in the caller's fault order *)
}

val site_of : fault -> int
val fault_name : Hydra_netlist.Netlist.t -> fault -> string

val all_stuck_at : Hydra_netlist.Netlist.t -> fault list
(** Both stuck-at values on every gate and flip-flop output, in the
    historic {!Fault.all_faults} order (site ascending, stuck-at-0
    first). *)

val dff_sites : Hydra_netlist.Netlist.t -> int list

val all_seu : ?at_cycle:int -> Hydra_netlist.Netlist.t -> fault list
(** One SEU per dff at [at_cycle] (default 0). *)

val seu_sweep : Hydra_netlist.Netlist.t -> cycles:int -> fault list
(** One SEU per dff per injection cycle in [0, cycles): the exhaustive
    single-upset space of a run window. *)

val stimulus_of_vectors :
  ?cycles_per_vector:int ->
  Hydra_netlist.Netlist.t ->
  bool list list ->
  (string * bool list) list * int
(** Expand test vectors (rows in input-port order, each held
    [cycles_per_vector] cycles, default 1) into per-port stimulus
    streams; also returns the total cycle count. *)

val random_stimulus :
  seed:int -> cycles:int -> Hydra_netlist.Netlist.t -> (string * bool list) list

val run :
  ?scheduler:Hydra_engine.Scheduler.t ->
  ?cache:Hydra_engine.Cache.t ->
  ?sharded:Hydra_engine.Sharded.t ->
  ?domains:int ->
  ?engine:[ `Wide | `Slab of int ] ->
  ?gating:bool ->
  ?status_outputs:string list ->
  ?deadline:float ->
  ?retry:Hydra_engine.Resilience.retry ->
  ?admission:Hydra_engine.Resilience.admission ->
  ?chaos:Chaos.plan ->
  Hydra_netlist.Netlist.t ->
  faults:fault list ->
  stimulus:(string * bool list) list ->
  cycles:int ->
  report
(** Simulate every fault against the golden lane under [stimulus]
    (per-port bool streams; missing ports idle at false, short streams
    pad with false) for [cycles] cycles from power-up, and classify.

    Outputs named in [status_outputs] (e.g. an ECC [single]-error flag)
    are excluded from the divergence comparison and instead sampled as
    ever-asserted per lane into {!verdict.status}.

    With the default [~engine:`Wide], at most 61 faults run per engine
    pass; larger lists chunk over a sharded engine — [?sharded] reuses
    one (it must be compiled from exactly this netlist with
    [~optimize:false ~relayout:false ~fuse:false]; registered forces are
    cleared), otherwise one is created with [?domains] and shut down
    afterwards.  A single-chunk run without [?sharded]/[?domains] stays
    inline on one wide engine.

    With [~engine:(`Slab k)] the campaign runs on a K-word
    {!Hydra_engine.Slab}: [62*k - 1] faults per engine pass (so a whole
    [all_stuck_at] list often fits in one), chunked over a slab-sharded
    driver built with [?domains].

    With [?scheduler] (mutually exclusive with [?domains]) the chunks
    run as tasks of one job on the scheduler's shared team instead of a
    private pool; combined with [?sharded] the two must share one pool
    ([Sharded.of_base ~pool:(Scheduler.pool sch)]) so member indices
    line up.  With [?cache] the campaign engines come from the
    compiled-circuit cache (identity-pass flavors), so repeated
    campaigns on the same netlist skip recompilation.  Verdicts are
    bit-identical in every mode.  [?sharded] is wide-only and rejected
    in combination with [`Slab].  [~gating:true] (slab-only; rejected
    with [`Wide]) runs the campaign engines with cluster-granular
    activity gating — force installs mark the affected blocks, so
    verdicts stay bit-identical while a mostly-quiescent circuit under
    a local fault simulates much faster.  Verdicts are identical to the
    wide engine's — only the packing changes.

    Resilience knobs: [?deadline] bounds the whole campaign in
    wall-clock seconds, enforced at chunk boundaries
    ({!Hydra_engine.Resilience.Deadline_exceeded} past it — with
    [?scheduler] the job itself carries the remaining budget and times
    out identically).  [?retry] re-runs chunks whose body raised a
    transient exception after a deterministic backoff (chunks recompute
    their verdict slice from reset, so retried runs stay bit-identical);
    with [?scheduler] the policy rides on the job and attempts are
    journaled in its trail.  [?admission] reserves the engine's lane
    demand against a shared budget: an over-budget [`Slab k] request is
    {e degraded} to fewer slab words (same verdicts, smaller passes)
    rather than rejected, and only a budget with less than one word
    free sheds the campaign ({!Hydra_engine.Resilience.Shed}).
    [?chaos] dresses every chunk with a seeded {!Chaos} injection point
    — the soak-test harness.

    Raises [Invalid_argument] on an invalid netlist, an out-of-range or
    outport fault site, an SEU site that is not a dff, an intermittent
    rate outside [0,1], or stimulus/status names not matching the
    netlist's ports. *)

val replay : report -> fault -> verdict
(** Re-run one fault alone against the report's recorded stimulus and
    window — the reproduction path for a detected verdict. *)

val coverage_ratio : report -> float
(** Detected fraction (1.0 of an empty campaign); latent faults count
    as undetected. *)

val mean_latency : report -> float option
(** Mean detection latency over detected verdicts; [None] if none. *)

val class_string : classification -> string
val verdict_to_string : verdict -> string
val summary_string : report -> string

val to_string : report -> string
(** Summary line plus one line per verdict. *)

val verdict_to_json : verdict -> string

val to_json : report -> string
(** Pinned schema (the [hydra faults --json] contract):
    [{"version":1,"total":…,"detected":…,"latent":…,"masked":…,
    "cycles":…,"verdicts":[{"name":…,"model":…,"site":…,…,
    "class":…,…},…]}]. *)
