(** Combinational equivalence checking: symbolic (execute the circuit at
    a BDD semantics and compare canonical forms), exhaustive, and random
    (paper section 4.6). *)

(** A COMB instance whose signals are BDDs over a manager. *)
module type BDD_COMB = sig
  include Hydra_core.Signal_intf.COMB with type t = Bdd.t

  val manager : Bdd.manager
end

val bdd_comb : Bdd.manager -> (module BDD_COMB)

type circuit = {
  apply :
    'a.
    (module Hydra_core.Signal_intf.COMB with type t = 'a) ->
    'a list ->
    'a list;
}
(** A circuit abstracted over its semantics — the form every Hydra
    circuit naturally has, packaged first-class so one value can be run on
    booleans, BDDs, graphs, ... *)

type counterexample = bool list

type result = Equivalent | Inequivalent of counterexample

val bdd_equiv : inputs:int -> circuit -> circuit -> result
(** Complete symbolic check over all [2^inputs] assignments.  Variable [i]
    of the BDD order is input [i]; order the inputs so related operand
    bits are adjacent (interleaved) to keep BDDs small. *)

val bdd_outputs : inputs:int -> circuit -> Bdd.manager * Bdd.t list
(** The circuit's output functions as BDDs over fresh variables. *)

val exhaustive : inputs:int -> circuit -> circuit -> result
(** Complete enumeration at the Bit semantics. *)

val packed_exhaustive : inputs:int -> circuit -> circuit -> result
(** Complete enumeration at the {!Hydra_core.Packed} semantics: 62
    assignments per evaluation.  Same guarantee as {!exhaustive}, much
    faster.  [inputs] ≤ 30 (the pass stream is lazy, so early
    counterexamples never materialize the rest). *)

val random : ?trials:int -> inputs:int -> circuit -> circuit -> result
(** Deterministic pseudo-random sampling: a cheap falsifier. *)

val packed_random : ?trials:int -> inputs:int -> circuit -> circuit -> result
(** {!random} at the {!Hydra_core.Packed} semantics: 62 vectors per
    circuit evaluation, so [trials] vectors cost ceil(trials/62)
    passes. *)

(** {1 Sequential netlist equivalence on the wide engine} *)

type seq_result =
  | Seq_equivalent
  | Seq_mismatch of {
      output : string;
      cycle : int;
      inputs : (string * bool list) list;
          (** the failing lane's per-input stimulus streams, cycle 0
              through the failing cycle *)
    }

val wide_random_netlists :
  ?scheduler:Hydra_engine.Scheduler.t ->
  ?cache:Hydra_engine.Cache.t ->
  ?passes:int ->
  ?cycles:int ->
  ?seed:int ->
  ?domains:int ->
  ?deadline:float ->
  Hydra_netlist.Netlist.t ->
  Hydra_netlist.Netlist.t ->
  seq_result
(** Random sequential equivalence of two netlists with the same port
    names, on {!Hydra_engine.Compiled_wide}: each of [passes] (default 8)
    passes drives 62 random stimulus streams for [cycles] (default 32)
    cycles into both circuits and compares every output word every cycle
    — dffs included, ~60x fewer simulator passes than lane-at-a-time
    sampling.  The workhorse check for optimized-vs-original netlists.
    With [?domains] > 1 (default 1), passes become
    {!Hydra_engine.Sharded} jobs running concurrently, each on its own
    pair of engine replicas; every pass seeds its own RNG from
    ([seed], pass index), so the stimulus — and the reported mismatch,
    always the lowest-index failing pass — is the same at any domain
    count.  With [?scheduler] (which overrides [?domains]) the passes
    run as tasks of one job on the scheduler's shared team, with both
    sides' replicas member-aligned; with [?cache] the two base engines
    come from the compiled-circuit cache (default wide flavor).  The
    result is identical in every mode.  [?deadline] bounds the whole
    sweep in wall-clock seconds, enforced between passes:
    {!Hydra_engine.Resilience.Deadline_exceeded} past it (with
    [?scheduler], the job times out to the same exception).

    Both netlists are validated ({!Hydra_analyze.Certify.validate})
    before any engine touches them; a malformed one raises
    [Invalid_argument] naming the defect, so a [Seq_mismatch] always
    means the engines genuinely disagree and never that a generator
    emitted a corrupt netlist. *)

val engine_random_netlists :
  ?passes:int ->
  ?cycles:int ->
  ?seed:int ->
  (module Hydra_engine.Engine_intf.S) ->
  (module Hydra_engine.Engine_intf.S) ->
  Hydra_netlist.Netlist.t ->
  Hydra_netlist.Netlist.t ->
  seq_result
(** Random sequential equivalence with each side on an arbitrary
    word-parallel engine handle — {!wide_random_netlists} generalized so
    a K-word {!Hydra_engine.Slab} can be cross-checked against the wide
    engine (or any two engines against each other).  Each of [passes]
    (default 4) passes materializes a stimulus cube of
    [max words1 words2] packed words per input per cycle for [cycles]
    (default 32) cycles; an engine with fewer words consumes it in
    multiple reset+replay rounds, so every global lane of the wider
    engine is compared against an independent simulation on the narrower
    one.  Netlists are validated first, as in {!wide_random_netlists};
    with 1-word engines on both sides the stimulus is identical to
    {!wide_random_netlists} at the same [seed].  Passes run sequentially;
    the reported mismatch is the first in (pass, cycle, output, word)
    order. *)

val slab_vs_wide :
  ?passes:int ->
  ?cycles:int ->
  ?seed:int ->
  ?k:int ->
  ?gating:bool ->
  ?simd:bool ->
  ?tuning:Hydra_engine.Kernel.tuning ->
  Hydra_netlist.Netlist.t ->
  seq_result
(** [slab_vs_wide nl]: {!engine_random_netlists} of the same netlist on
    {!Hydra_engine.Slab} ([?k] words, default 8, with [?gating], [?simd]
    and [?tuning] as in {!Hydra_engine.Slab.create}) versus
    {!Hydra_engine.Compiled_wide} — the acceptance check that every slab
    word of every flavor simulates exactly the wide semantics. *)

val seq_equivalent : seq_result -> bool

val certify_patch :
  ?passes:int ->
  ?cycles:int ->
  ?seed:int ->
  Hydra_engine.Kernel.program ->
  Hydra_analyze.Certify.outcome
(** Translation-validate an incrementally patched program (the output of
    {!Hydra_engine.Kernel.patch}): validate its netlist, then run the
    patched kernel — wide at [k = 1], slab otherwise — against an
    independent fresh full compile of the same netlist with
    {!engine_random_netlists} ([?passes] default 4, [?cycles] default
    32).  [Certified] names the checks performed; a behavioural
    divergence is [Refuted] with a replayable counterexample, exactly
    like the compile-time pass certificates. *)

val is_equivalent : result -> bool
