(** Combinational equivalence checking: symbolic (execute the circuit at
    a BDD semantics and compare canonical forms), exhaustive, and random
    (paper section 4.6). *)

(** A COMB instance whose signals are BDDs over a manager. *)
module type BDD_COMB = sig
  include Hydra_core.Signal_intf.COMB with type t = Bdd.t

  val manager : Bdd.manager
end

val bdd_comb : Bdd.manager -> (module BDD_COMB)

type circuit = {
  apply :
    'a.
    (module Hydra_core.Signal_intf.COMB with type t = 'a) ->
    'a list ->
    'a list;
}
(** A circuit abstracted over its semantics — the form every Hydra
    circuit naturally has, packaged first-class so one value can be run on
    booleans, BDDs, graphs, ... *)

type counterexample = bool list

type result = Equivalent | Inequivalent of counterexample

val bdd_equiv : inputs:int -> circuit -> circuit -> result
(** Complete symbolic check over all [2^inputs] assignments.  Variable [i]
    of the BDD order is input [i]; order the inputs so related operand
    bits are adjacent (interleaved) to keep BDDs small. *)

val bdd_outputs : inputs:int -> circuit -> Bdd.manager * Bdd.t list
(** The circuit's output functions as BDDs over fresh variables. *)

val exhaustive : inputs:int -> circuit -> circuit -> result
(** Complete enumeration at the Bit semantics. *)

val packed_exhaustive : inputs:int -> circuit -> circuit -> result
(** Complete enumeration at the {!Hydra_core.Packed} semantics: 62
    assignments per evaluation.  Same guarantee as {!exhaustive}, much
    faster.  [inputs] ≤ 30 (the pass stream is lazy, so early
    counterexamples never materialize the rest). *)

val random : ?trials:int -> inputs:int -> circuit -> circuit -> result
(** Deterministic pseudo-random sampling: a cheap falsifier. *)

val packed_random : ?trials:int -> inputs:int -> circuit -> circuit -> result
(** {!random} at the {!Hydra_core.Packed} semantics: 62 vectors per
    circuit evaluation, so [trials] vectors cost ceil(trials/62)
    passes. *)

(** {1 Sequential netlist equivalence on the wide engine} *)

type seq_result =
  | Seq_equivalent
  | Seq_mismatch of {
      output : string;
      cycle : int;
      inputs : (string * bool list) list;
          (** the failing lane's per-input stimulus streams, cycle 0
              through the failing cycle *)
    }

val wide_random_netlists :
  ?passes:int ->
  ?cycles:int ->
  ?seed:int ->
  ?domains:int ->
  Hydra_netlist.Netlist.t ->
  Hydra_netlist.Netlist.t ->
  seq_result
(** Random sequential equivalence of two netlists with the same port
    names, on {!Hydra_engine.Compiled_wide}: each of [passes] (default 8)
    passes drives 62 random stimulus streams for [cycles] (default 32)
    cycles into both circuits and compares every output word every cycle
    — dffs included, ~60x fewer simulator passes than lane-at-a-time
    sampling.  The workhorse check for optimized-vs-original netlists.
    With [?domains] > 1 (default 1), passes become
    {!Hydra_engine.Sharded} jobs running concurrently, each on its own
    pair of engine replicas; every pass seeds its own RNG from
    ([seed], pass index), so the stimulus — and the reported mismatch,
    always the lowest-index failing pass — is the same at any domain
    count.

    Both netlists are validated ({!Hydra_analyze.Certify.validate})
    before any engine touches them; a malformed one raises
    [Invalid_argument] naming the defect, so a [Seq_mismatch] always
    means the engines genuinely disagree and never that a generator
    emitted a corrupt netlist. *)

val seq_equivalent : seq_result -> bool

val is_equivalent : result -> bool
