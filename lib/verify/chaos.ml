(* Chaos harness: seeded, replayable fault injection for the execution
   layer.

   A plan is a pure decision function: whether a given (label, task,
   attempt) site gets a delay, an exception or a stuck spin — and how
   long — is hashed from the plan seed with the same splitmix
   discipline as {!Hydra_engine.Resilience.backoff} jitter and the
   fault campaigns' intermittent coins.  Replaying a storm is therefore
   exact: the same seed injects the same faults at the same sites, and
   a retried task sees a *different* decision on its next attempt
   (attempt is part of the site), which is what lets retry policies
   actually recover.

   [wrap] dresses a scheduler task body; [hook] dresses the compiled-
   circuit cache's lookup/insert sites via {!Hydra_engine.Cache.
   set_fault_hook}.  Counters record every injection, so soak tests can
   assert both "enough chaos happened" and "nothing was lost". *)

module Resilience = Hydra_engine.Resilience

exception Injected of { label : string; task : int; attempt : int }

let () =
  Printexc.register_printer (function
    | Injected { label; task; attempt } ->
      Some
        (Printf.sprintf "Chaos.Injected(label=%S, task=%d, attempt=%d)" label
           task attempt)
    | _ -> None)

type plan = {
  seed : int;
  delay_rate : float;
  exn_rate : float;
  stuck_rate : float;
  max_delay : float;
  stuck_spin : float;
  delays : int Atomic.t;
  exns : int Atomic.t;
  stucks : int Atomic.t;
  (* per-(label, task) attempt counters: the site key includes the
     attempt number so a retry re-rolls its fate *)
  attempts : (string * int, int) Hashtbl.t;
  a_lock : Mutex.t;
}

type counts = { delays : int; exns : int; stucks : int }

let plan ?(delay_rate = 0.05) ?(exn_rate = 0.05) ?(stuck_rate = 0.0)
    ?(max_delay = 0.005) ?(stuck_spin = 0.05) ~seed () =
  let rate name r =
    if r < 0.0 || r > 1.0 then
      invalid_arg (Printf.sprintf "Chaos.plan: %s must be in [0, 1]" name)
  in
  rate "delay_rate" delay_rate;
  rate "exn_rate" exn_rate;
  rate "stuck_rate" stuck_rate;
  if delay_rate +. exn_rate +. stuck_rate > 1.0 then
    invalid_arg "Chaos.plan: rates must sum to <= 1";
  if max_delay < 0.0 || stuck_spin < 0.0 then
    invalid_arg "Chaos.plan: delays must be >= 0";
  {
    seed;
    delay_rate;
    exn_rate;
    stuck_rate;
    max_delay;
    stuck_spin;
    delays = Atomic.make 0;
    exns = Atomic.make 0;
    stucks = Atomic.make 0;
    attempts = Hashtbl.create 64;
    a_lock = Mutex.create ();
  }

let injected (p : plan) =
  {
    delays = Atomic.get p.delays;
    exns = Atomic.get p.exns;
    stucks = Atomic.get p.stucks;
  }

(* Mix a string into hashable ints without depending on Hashtbl.hash
   stability across versions: fold characters into two accumulators. *)
let label_ints label =
  let a = ref 0 and b = ref 0 in
  String.iteri
    (fun i c -> (
       a := (!a * 31) + Char.code c;
       b := !b lxor (Char.code c lsl (i land 15))))
    label;
  (!a, !b)

type verdict = Pass | Delay of float | Raise | Stuck

(* The pure per-site decision: one uniform draw partitioned by the
   rates, a second draw for the delay magnitude. *)
let decide p ~label ~task ~attempt =
  let la, lb = label_ints label in
  let u = Resilience.unit_hash [ p.seed; la; lb; task; attempt; 0x51 ] in
  if u < p.exn_rate then Raise
  else if u < p.exn_rate +. p.stuck_rate then Stuck
  else if u < p.exn_rate +. p.stuck_rate +. p.delay_rate then
    Delay
      (p.max_delay
      *. Resilience.unit_hash [ p.seed; la; lb; task; attempt; 0xde1a ])
  else Pass

let next_attempt p ~label ~task =
  Mutex.lock p.a_lock;
  let k = (label, task) in
  let a = 1 + (try Hashtbl.find p.attempts k with Not_found -> 0) in
  Hashtbl.replace p.attempts k a;
  Mutex.unlock p.a_lock;
  a

let inject p ~label ~task ?poll () =
  let attempt = next_attempt p ~label ~task in
  match decide p ~label ~task ~attempt with
  | Pass -> ()
  | Delay d ->
    Atomic.incr p.delays;
    Unix.sleepf d
  | Raise ->
    Atomic.incr p.exns;
    raise (Injected { label; task; attempt })
  | Stuck ->
    (* spin "stuck" until the poll says the job is doomed (watchdog or
       deadline fired) or a safety bound elapses — a real hang would
       wedge the suite, and the point is to exercise detection, not to
       actually lose the member *)
    Atomic.incr p.stucks;
    let t0 = Resilience.now () in
    let bound = Float.max p.stuck_spin 0.001 in
    let doomed = match poll with Some f -> f | None -> fun () -> false in
    while (not (doomed ())) && Resilience.now () -. t0 < bound do
      Unix.sleepf 0.0005
    done

let wrap p ~label ?poll body ~member task =
  inject p ~label ~task ?poll ();
  body ~member task

let hook p ~label site =
  (* cache sites have no task index; fold the site name into the label
     so lookup and insert roll independent fates *)
  inject p ~label:(label ^ ":" ^ site) ~task:0 ()
