(* Bounded model checking and reachability over netlist state machines.

   The synchronous model makes the whole circuit one state machine whose
   state vector is the flip-flop contents (paper section 3).  This module
   explores that machine on the compiled engine: breadth-first reachability
   over dff states (for circuits with few inputs/flip flops) and
   bounded-depth checking of output invariants. *)

module Netlist = Hydra_netlist.Netlist
module Compiled = Hydra_engine.Compiled

type violation = {
  depth : int;
  inputs : bool list list;  (* input rows leading to the violation *)
  outputs : (string * bool) list;
}

type result = Holds | Violated of violation

(* Invariant support: dff component indices proven stuck at their
   power-up value (e.g. by [Hydra_analyze.Dataflow.stuck_registers]) can
   be assumed by the search.  Pinned dffs are omitted from snapshots —
   collapsing states that differ only in provably-constant bits — and
   re-checked at every snapshot: a pinned dff caught off its value means
   the supplied analysis was wrong and the pruning unsound, so the
   tripwire fails hard rather than silently exploring a wrong space. *)
let validate_invariants netlist invariants =
  List.iter
    (fun (i, b) ->
      if i < 0 || i >= Netlist.size netlist then
        invalid_arg (Printf.sprintf "Bmc: invariant index %d out of range" i);
      match netlist.Netlist.components.(i) with
      | Netlist.Dffc init ->
        if init <> b then
          invalid_arg
            (Printf.sprintf
               "Bmc: invariant pins dff %d at %b but it powers up at %b" i b
               init)
      | _ ->
        invalid_arg
          (Printf.sprintf "Bmc: invariant index %d is not a flip flop" i))
    invariants

(* State snapshot = dff values, minus the pinned ones (tripwired). *)
let snapshot ?(invariants = []) sim =
  let dffs = Compiled.dff_indices sim in
  List.filter_map
    (fun i ->
      match List.assoc_opt i invariants with
      | None -> Some (Compiled.peek sim i)
      | Some b ->
        if Compiled.peek sim i <> b then
          failwith
            (Printf.sprintf
               "Bmc: invariant violated: dff %d left its pinned value %b" i b);
        None)
    (Array.to_list dffs)

let restore ?(invariants = []) sim state =
  let dffs = Compiled.dff_indices sim in
  let rest = ref state in
  Array.iter
    (fun i ->
      match List.assoc_opt i invariants with
      | Some b -> Compiled.poke sim i b
      | None -> (
        match !rest with
        | b :: tl ->
          rest := tl;
          Compiled.poke sim i b
        | [] -> assert false))
    dffs

(* [check ~netlist ~property ~depth]: drive the circuit with every input
   sequence of length [depth] (exhaustive over the circuit's inputs per
   cycle) and fail if [property] (a named output) is ever 0 after
   settling.  Breadth-first over deduplicated dff states, so a reported
   violation is at the earliest possible depth.  Exponential in inputs:
   intended for control-style circuits with few inputs. *)
let check ?(max_states = 200_000) ?(invariants = []) ~property ~depth netlist =
  validate_invariants netlist invariants;
  let sim = Compiled.create netlist in
  let snapshot sim = snapshot ~invariants sim in
  let restore sim st = restore ~invariants sim st in
  let input_names = List.map fst netlist.Netlist.inputs in
  let vectors = Hydra_core.Bit.vectors (List.length input_names) in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let start = snapshot sim in
  Hashtbl.add seen start ();
  Queue.add (start, 0, []) queue;
  let explored = ref 0 in
  let exception Found of violation in
  try
    while not (Queue.is_empty queue) do
      let state, d, history = Queue.pop queue in
      if d < depth then
        List.iter
          (fun v ->
            incr explored;
            if !explored > max_states then
              failwith "Bmc.check: state budget exceeded";
            restore sim state;
            List.iter2 (fun n b -> Compiled.set_input sim n b) input_names v;
            Compiled.settle sim;
            let outs = Compiled.outputs sim in
            (match List.assoc_opt property outs with
            | Some true -> ()
            | Some false ->
              raise
                (Found
                   { depth = d; inputs = List.rev (v :: history); outputs = outs })
            | None -> invalid_arg ("Bmc.check: unknown output " ^ property));
            Compiled.tick sim;
            let s' = snapshot sim in
            if not (Hashtbl.mem seen s') then begin
              Hashtbl.add seen s' ();
              Queue.add (s', d + 1, v :: history) queue
            end)
          vectors
    done;
    Holds
  with Found v -> Violated v

(* Reachable state count via BFS from the power-up state, driving all
   input combinations at every step.  For small sequential circuits. *)
let reachable_states ?(limit = 100_000) ?(invariants = []) netlist =
  validate_invariants netlist invariants;
  let sim = Compiled.create netlist in
  let snapshot sim = snapshot ~invariants sim in
  let restore sim st = restore ~invariants sim st in
  let input_names = List.map fst netlist.Netlist.inputs in
  let vectors = Hydra_core.Bit.vectors (List.length input_names) in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let start = snapshot sim in
  Hashtbl.add seen start ();
  Queue.add start queue;
  let truncated = ref false in
  while not (Queue.is_empty queue) do
    let state = Queue.pop queue in
    List.iter
      (fun v ->
        restore sim state;
        List.iter2 (fun n b -> Compiled.set_input sim n b) input_names v;
        Compiled.settle sim;
        Compiled.tick sim;
        let s' = snapshot sim in
        if not (Hashtbl.mem seen s') then
          if Hashtbl.length seen >= limit then truncated := true
          else begin
            Hashtbl.add seen s' ();
            Queue.add s' queue
          end)
      vectors
  done;
  (Hashtbl.length seen, !truncated)

(* Sequential equivalence up to [depth]: two netlists with identical input
   port names produce identical output values on every input sequence of
   length [depth].  Breadth-first over deduplicated product states, so a
   reported difference is at the earliest possible depth. *)
let equiv_sequential ?(max_states = 200_000) ~depth nl_a nl_b =
  let sa = Compiled.create nl_a and sb = Compiled.create nl_b in
  let names_a = List.map fst nl_a.Netlist.inputs in
  let names_b = List.map fst nl_b.Netlist.inputs in
  if List.sort compare names_a <> List.sort compare names_b then
    invalid_arg "Bmc.equiv_sequential: different input ports";
  let vectors = Hydra_core.Bit.vectors (List.length names_a) in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let start = (snapshot sa, snapshot sb) in
  Hashtbl.add seen start ();
  Queue.add (start, 0, []) queue;
  let explored = ref 0 in
  let exception Diff of violation in
  try
    while not (Queue.is_empty queue) do
      let (state_a, state_b), d, history = Queue.pop queue in
      if d < depth then
        List.iter
          (fun v ->
            incr explored;
            if !explored > max_states then
              failwith "Bmc.equiv_sequential: state budget exceeded";
            restore sa state_a;
            restore sb state_b;
            List.iter2 (fun n b -> Compiled.set_input sa n b) names_a v;
            List.iter2 (fun n b -> Compiled.set_input sb n b) names_a v;
            Compiled.settle sa;
            Compiled.settle sb;
            let oa = List.sort compare (Compiled.outputs sa) in
            let ob = List.sort compare (Compiled.outputs sb) in
            if oa <> ob then
              raise
                (Diff
                   { depth = d; inputs = List.rev (v :: history); outputs = oa });
            Compiled.tick sa;
            Compiled.tick sb;
            let s' = (snapshot sa, snapshot sb) in
            if not (Hashtbl.mem seen s') then begin
              Hashtbl.add seen s' ();
              Queue.add (s', d + 1, v :: history) queue
            end)
          vectors
    done;
    Holds
  with Diff v -> Violated v
