(** Chaos harness: seeded, replayable fault injection for soak-testing
    the execution layer (scheduler jobs, cache lookups).

    A {!plan} decides the fate of every injection site — a (label,
    task, attempt) triple — by pure hashing from its seed: the same
    seed replays the identical storm, and a retried task re-rolls its
    fate (the attempt number is part of the site), so retry policies
    can genuinely recover.  Faults come in three flavors, partitioned
    by rate: injected delays (up to [max_delay]), injected exceptions
    ({!Injected}, classified transient by
    {!Hydra_engine.Resilience.default_transient}), and stuck spins
    (the body stops making progress for [stuck_spin] seconds or until
    [?poll] reports the job doomed — watchdog fodder). *)

exception Injected of { label : string; task : int; attempt : int }
(** The injected failure.  Not a programming error, so default retry
    policies classify it transient. *)

type plan

type counts = { delays : int; exns : int; stucks : int }

val plan :
  ?delay_rate:float ->
  ?exn_rate:float ->
  ?stuck_rate:float ->
  ?max_delay:float ->
  ?stuck_spin:float ->
  seed:int ->
  unit ->
  plan
(** Rates are probabilities per site in [0,1], summing to at most 1
    (defaults: 5% delay, 5% exception, no stuck spins); [max_delay]
    (default 5 ms) bounds injected delays, [stuck_spin] (default 50 ms)
    bounds a stuck spin.  Raises [Invalid_argument] on nonsense. *)

val inject : plan -> label:string -> task:int -> ?poll:(unit -> bool) -> unit -> unit
(** Roll and execute this site's fate: nothing, a sleep, an {!Injected}
    raise, or a stuck spin (which ends early once [?poll] returns true —
    pass the job's doomed check so a watchdog/deadline verdict releases
    the spinner).  Each call under the same (label, task) advances the
    attempt counter. *)

val wrap :
  plan ->
  label:string ->
  ?poll:(unit -> bool) ->
  (member:int -> int -> unit) ->
  member:int ->
  int ->
  unit
(** [wrap p ~label body] is a scheduler task body that injects at entry
    and then runs [body] — dress any [Scheduler.submit] body with it. *)

val hook : plan -> label:string -> string -> unit
(** A {!Hydra_engine.Cache.set_fault_hook} function: injects at the
    cache's lookup/insert sites (each site rolls an independent
    fate). *)

val injected : plan -> counts
(** How many faults of each flavor this plan has injected so far. *)
