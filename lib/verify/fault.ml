(* Stuck-at fault simulation.

   The classic manufacturing-test model: a fault forces one component's
   output permanently to 0 or 1.  A test vector set *detects* a fault if
   some vector makes a faulty circuit's outputs differ from the good
   circuit's.  Coverage — the fraction of faults detected — measures the
   quality of a test set, which is the practical purpose of the
   simulation tooling the paper motivates in section 4.2.

   Since the campaign engine landed this module is a thin compatibility
   layer over {!Campaign}: faults are injected as per-lane force masks
   at runtime (61 faults per engine pass, chunked across domains) rather
   than by rewriting and recompiling the netlist once per fault.
   [inject]/[response] keep the old rewriting semantics for callers that
   want a standalone faulty netlist, and [coverage_recompile] preserves
   the historic per-fault-recompile loop as the bit-identity reference
   (and benchmark baseline). *)

module Netlist = Hydra_netlist.Netlist
module Compiled = Hydra_engine.Compiled

type fault = { site : int; stuck : bool }

let fault_name nl { site; stuck } =
  Printf.sprintf "%s@%d stuck-at-%d"
    (Netlist.component_name nl.Netlist.components.(site))
    site (Bool.to_int stuck)

(* All faults on gate and flip-flop outputs. *)
let all_faults nl =
  let faults = ref [] in
  Array.iteri
    (fun i comp ->
      match comp with
      | Netlist.Invc | Netlist.And2c | Netlist.Or2c | Netlist.Xor2c
      | Netlist.Dffc _ ->
        faults := { site = i; stuck = true } :: { site = i; stuck = false } :: !faults
      | Netlist.Inport _ | Netlist.Outport _ | Netlist.Constant _ -> ())
    nl.Netlist.components;
  List.rev !faults

(* [inject nl fault]: a netlist where [fault.site]'s consumers read the
   constant [fault.stuck] instead. *)
let inject nl { site; stuck } =
  let n = Netlist.size nl in
  (* append one constant component at index n *)
  let components = Array.append nl.Netlist.components [| Netlist.Constant stuck |] in
  let names = Array.append nl.Netlist.names [| [] |] in
  let fanin =
    Array.append
      (Array.map
         (fun drivers ->
           Array.map (fun d -> if d = site then n else d) drivers)
         nl.Netlist.fanin)
      [| [||] |]
  in
  { nl with Netlist.components; names; fanin }

(* Run [vectors] (rows of input values, in input-port order) on a
   combinational or sequential circuit for [cycles_per_vector] cycles each
   and collect the output rows; used to compare good and faulty runs. *)
let response nl ~vectors ~cycles_per_vector =
  let sim = Compiled.create nl in
  let names = List.map fst nl.Netlist.inputs in
  List.map
    (fun vector ->
      List.iter2 (fun n b -> Compiled.set_input sim n b) names vector;
      let rows = ref [] in
      for _ = 1 to cycles_per_vector do
        Compiled.settle sim;
        rows := List.map snd (Compiled.outputs sim) :: !rows;
        Compiled.tick sim
      done;
      List.rev !rows)
    vectors

type coverage = {
  total : int;
  detected : int;
  undetected : fault list;
}

let ratio c = if c.total = 0 then 1.0 else float_of_int c.detected /. float_of_int c.total

(* The historic per-fault netlist-rewrite-and-recompile loop, kept as the
   bit-identity reference for [coverage] and as the benchmark baseline. *)
let coverage_recompile ?(cycles_per_vector = 1) nl ~vectors =
  let good = response nl ~vectors ~cycles_per_vector in
  let faults = all_faults nl in
  let undetected = ref [] in
  let detected = ref 0 in
  List.iter
    (fun f ->
      let bad = response (inject nl f) ~vectors ~cycles_per_vector in
      if bad <> good then incr detected else undetected := f :: !undetected)
    faults;
  { total = List.length faults; detected = !detected; undetected = List.rev !undetected }

let campaign_fault { site; stuck } = Campaign.Stuck_at { site; value = stuck }

(* Detection is equivalent across the two engines: the old loop runs all
   vectors through ONE faulty simulation (state carries across vectors),
   so a campaign holding each vector [cycles_per_vector] cycles sees the
   same trajectory, and "some output row differs" is exactly the
   campaign's Detected class (Latent state-only divergence is invisible
   to the old loop too). *)
let coverage_of_faults ?scheduler ?cache ?sharded ?(cycles_per_vector = 1) nl
    ~vectors faults =
  let stimulus, cycles = Campaign.stimulus_of_vectors ~cycles_per_vector nl vectors in
  let report =
    Campaign.run ?scheduler ?cache ?sharded nl
      ~faults:(List.map campaign_fault faults) ~stimulus ~cycles
  in
  let undetected =
    List.filter_map
      (fun (f, v) ->
        match v.Campaign.classification with
        | Campaign.Detected _ -> None
        | Campaign.Latent | Campaign.Masked -> Some f)
      (List.combine faults report.Campaign.verdicts)
  in
  { total = report.Campaign.total;
    detected = report.Campaign.detected;
    undetected }

(* [coverage nl ~vectors]: fraction of stuck-at faults detected by the
   vector set.  Sequential circuits get [cycles_per_vector] cycles of
   observation per vector (state carries over within one fault's run). *)
let coverage ?cycles_per_vector nl ~vectors =
  coverage_of_faults ?cycles_per_vector nl ~vectors (all_faults nl)

(* Greedy random test generation: add random vectors until coverage stops
   improving or reaches [target]. *)
let random_vectors ~seed ~inputs n =
  let st = Random.State.make [| seed; inputs; n |] in
  List.init n (fun _ -> List.init inputs (fun _ -> Random.State.bool st))

(* Detection is monotone under vector-list extension (the prefix of the
   response is unchanged), so each batch only re-simulates the still-
   undetected faults over the full grown vector list — bit-identical to
   grading every fault from scratch, at a fraction of the work. *)
let generate_tests ?(seed = 42) ?(target = 1.0) ?(batch = 16) ?(max_vectors = 512)
    ?cycles_per_vector nl =
  let inputs = List.length nl.Netlist.inputs in
  let all = all_faults nl in
  let total = List.length all in
  (* every batch's campaign engine comes from the process-wide compiled-
     circuit cache: the first batch compiles, the rest replicate *)
  let cache = Hydra_engine.Cache.shared () in
  let scheduler, sharded =
    (* one persistent scheduler + per-member replica set for every batch
       when the fault list needs chunking anyway; small circuits stay on
       the inline (cache-warm) fast path *)
    if total > Hydra_engine.Compiled_wide.lanes - 1 then begin
      let sch = Hydra_engine.Scheduler.create () in
      let base =
        Hydra_engine.Cache.wide cache ~optimize:false ~relayout:false
          ~fuse:false nl
      in
      ( Some sch,
        Some
          (Hydra_engine.Sharded.of_base
             ~pool:(Hydra_engine.Scheduler.pool sch)
             base) )
    end
    else (None, None)
  in
  let grade vectors faults =
    coverage_of_faults ?scheduler ~cache ?sharded ?cycles_per_vector nl
      ~vectors faults
  in
  let finish vectors undetected =
    (vectors, { total; detected = total - List.length undetected; undetected })
  in
  let rec go vectors undetected =
    let detected = total - List.length undetected in
    let r = if total = 0 then 1.0 else float_of_int detected /. float_of_int total in
    if r >= target || List.length vectors >= max_vectors then
      finish vectors undetected
    else begin
      let fresh = random_vectors ~seed:(seed + List.length vectors) ~inputs batch in
      let vectors' = vectors @ fresh in
      let cov' = grade vectors' undetected in
      (* a batch that detects nothing new ends the search *)
      if cov'.detected = 0 then finish vectors undetected
      else go vectors' cov'.undetected
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Hydra_engine.Scheduler.shutdown scheduler)
    (fun () ->
      let initial = random_vectors ~seed ~inputs batch in
      go initial (grade initial all).undetected)
