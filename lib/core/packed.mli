(** Bit-parallel combinational semantics: a signal is a machine word
    carrying {!lanes} independent simulation runs, so one pass of a
    circuit evaluates it on up to 62 input vectors at once.  The lane
    layout and helpers here are shared with the sequential wide engine
    ({!Hydra_engine.Compiled_wide}). *)

include Signal_intf.COMB with type t = int

val lanes : int
(** Number of parallel lanes (62: OCaml ints keep a tag bit and we keep
    the sign bit clear). *)

val lane_mask : int
(** All lanes set. *)

val broadcast : bool -> t
(** The same value in every lane (alias of {!constant}). *)

val pack : bool list -> t
(** Pack per-lane values; element 0 goes to lane 0. *)

val pack_array : bool array -> t
(** Array variant of {!pack}. *)

val lane : t -> int -> bool
(** Extract one lane. *)

val set_lane : t -> int -> bool -> t
(** Replace one lane, leaving the others unchanged. *)

val unpack : count:int -> t -> bool list
(** First [count] lanes. *)

val unpack_array : count:int -> t -> bool array
(** Array variant of {!unpack}. *)

val mask_of_count : int -> t
(** All-ones over the first [count] lanes: the valid-lane mask for a
    partially filled pass. *)

val random_word : Random.State.t -> t
(** A uniformly random value in every lane. *)

val enumerate : inputs:int -> (t list * int) Seq.t
(** [enumerate ~inputs] packs all [2^inputs] input assignments into
    passes, produced lazily: each element is (one packed word per input
    variable, number of valid lanes).  Lane [l] of pass words holds one
    assignment; the assignment ordering matches {!Bit.vectors} (variable
    0 is the MSB of the vector index).  Consumers that stop early only
    pay for the passes they force.  Raises for more than 30 inputs (a
    2^30-assignment sweep is already ~17M passes). *)
