(* Bit-parallel combinational semantics: a signal is a machine word
   carrying up to [lanes] independent simulation runs at once.

   Executing a circuit once on packed signals evaluates it on 62 test
   vectors simultaneously — the classic trick for fast exhaustive or
   random testing of combinational logic (paper section 4.2 argues
   simulation is the practical workhorse; this makes it 62x wider per
   gate operation).  The same lane layout is shared by the sequential
   wide engine ({!Hydra_engine.Compiled_wide}), which reuses the helpers
   below. *)

type t = int

let lanes = 62  (* OCaml ints are 63-bit; keep the sign bit clear *)
let lane_mask = (1 lsl lanes) - 1

let zero = 0
let one = lane_mask
let constant b = if b then one else zero
let inv a = lnot a land lane_mask
let and2 a b = a land b
let or2 a b = a lor b
let xor2 a b = a lxor b
let label _ s = s

(* Shared lane helpers ------------------------------------------------- *)

let broadcast = constant

(* Pack per-lane booleans (lane 0 = least significant bit). *)
let pack bs =
  List.fold_left (fun (acc, i) b -> ((if b then acc lor (1 lsl i) else acc), i + 1)) (0, 0) bs
  |> fst

let pack_array bs =
  let w = ref 0 in
  Array.iteri (fun i b -> if b then w := !w lor (1 lsl i)) bs;
  !w

let lane v i = (v lsr i) land 1 = 1
let set_lane v i b = if b then v lor (1 lsl i) else v land lnot (1 lsl i)
let unpack ~count v = List.init count (lane v)
let unpack_array ~count v = Array.init count (lane v)

(* All-ones over the first [count] lanes — the valid-lane mask for a
   partially filled pass. *)
let mask_of_count count =
  if count >= lanes then lane_mask else (1 lsl count) - 1

(* A uniformly random word over all 62 lanes.  [Random.State.bits] yields
   30 bits at a time; three draws cover the word ([Random.State.int]
   cannot take [2^62] as a bound). *)
let random_word st =
  let b0 = Random.State.bits st
  and b1 = Random.State.bits st
  and b2 = Random.State.bits st in
  (b0 lor (b1 lsl 30) lor (b2 lsl 60)) land lane_mask

(* All input assignments for [inputs] variables, packed into ceil(2^inputs
   / lanes) passes, produced lazily: [enumerate ~inputs] is a sequence of
   (input words, valid lane count) pairs; input word [j] carries variable
   j's value in each lane.  Lazy so that exhaustive sweeps over many
   inputs never materialize the whole pass list — consumers that stop
   early (a counterexample found) pay only for the passes they force. *)
let enumerate ~inputs =
  if inputs > 30 then
    invalid_arg "Packed.enumerate: too many inputs (max 30)";
  let total = 1 lsl inputs in
  let rec passes start () =
    if start >= total then Seq.Nil
    else begin
      let count = min lanes (total - start) in
      let words =
        List.init inputs (fun j ->
            let w = ref 0 in
            for l = 0 to count - 1 do
              (* vector index start+l, variable j; MSB-first convention to
                 match Bit.vectors *)
              if (start + l) lsr (inputs - 1 - j) land 1 = 1 then
                w := !w lor (1 lsl l)
            done;
            !w)
      in
      Seq.Cons ((words, count), passes (start + count))
    end
  in
  passes 0
