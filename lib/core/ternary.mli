(** Three-valued combinational semantics: 0, 1 and X (unknown), under
    Kleene's strong logic.  Executing a circuit at this instance performs
    X-propagation; {!Hydra_engine.Xsim} uses it for power-up and reset
    analysis. *)

type t = F | T | X

include Signal_intf.COMB with type t := t

val of_bool : bool -> t
val to_bool : t -> bool option
(** [None] when unknown. *)

val is_known : t -> bool
val to_char : t -> char
(** ['0'], ['1'] or ['x']. *)

val to_string : t list -> string

val refines : t -> t -> bool
(** [refines a b]: [b] is consistent with [a] — equal, or [a] was [X].
    Gates are monotone with respect to this order. *)

val leq : t -> t -> bool
(** The information order ([X] at the bottom, [0]/[1] incomparable above
    it): [leq a b] iff [a = X] or [a = b].  Every gate transfer function
    is monotone for it — the termination argument of every
    {!Hydra_analyze.Dataflow} fixpoint. *)

val join : t -> t -> t
(** Least upper bound of the constant-propagation lattice ([X] read as
    "not a constant", at the top): equal values stay, different ones
    become [X].  Commutative, associative, idempotent (QCheck-tested). *)
