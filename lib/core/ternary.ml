(* Three-valued combinational semantics: 0, 1, X (unknown).

   Yet another instance of the paper's "apply the circuit to a different
   signal type" idea (section 4): executing a circuit on ternary values
   performs X-propagation.  A gate output is known whenever the known
   inputs force it (0 on an and gate, 1 on an or gate), and X otherwise —
   Kleene's strong three-valued logic.

   The main use is power-up analysis (see {!Hydra_engine.Xsim}): flip
   flops whose value after reset should not matter start as X, and any
   output that settles to 0/1 is provably independent of them. *)

type t = F | T | X

let zero = F
let one = T
let constant b = if b then T else F

let of_bool = constant
let to_bool = function F -> Some false | T -> Some true | X -> None
let is_known = function F | T -> true | X -> false

let inv = function F -> T | T -> F | X -> X

let and2 a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | X, (T | X) | T, X -> X

let or2 a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, F -> F
  | X, (F | X) | F, X -> X

let xor2 a b =
  match (a, b) with
  | X, _ | _, X -> X
  | T, T | F, F -> F
  | T, F | F, T -> T

let label _ s = s

let to_char = function F -> '0' | T -> '1' | X -> 'x'

let to_string w = String.init (List.length w) (fun i -> to_char (List.nth w i))

(* Refinement order: X is below both 0 and 1.  [refines a b] holds when
   [b] is consistent with [a] (either equal or [a] was unknown). *)
let refines a b = a = X || a = b

(* The same poset read as a lattice, both ways round.  [leq a b] is the
   information order used by X-propagation fixpoints (X at the bottom,
   values become more known going up); [join] is the least upper bound of
   the *constant-propagation* order, where X sits at the top ("not a
   constant") and joining two different constants loses the fact.  The
   two orders are mutual duals; the gates are monotone for both, which is
   what makes every Dataflow fixpoint terminate — test_dataflow checks
   the laws by QCheck. *)
let leq a b = a = X || a = b
let join a b = if a = b then a else X
