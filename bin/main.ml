(* hydra: command-line front end.

   Subcommands:
     asm      assemble a source file to hex words
     dis      disassemble hex words
     run      assemble and execute a program on the gate-level processor
     netlist  emit a named circuit's netlist (paper tuple, dot, verilog)
     lint     static lint rules over named circuits or saved netlists
     analyze  fixpoint dataflow analyses and the certified sweep
     timing   static timing/size report for a named circuit
     faults   fault-injection campaigns (stuck-at, SEU, intermittent)
     equiv    slab-vs-wide engine equivalence sweep over named circuits
     algo     print the processor's control algorithm (paper section 6.2)

   Named circuits for netlist/lint/analyze/timing/faults: fig1, mux1,
   regfile1:<k>, ripple:<n>, cla-sklansky:<n>, cla-brent-kung:<n>,
   cla-kogge-stone:<n>, alu:<n>, sorter:<n>x<w>, secded, wallace:<n>,
   cpu:<mem_bits>. *)

open Cmdliner

module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module L = Hydra_netlist.Levelize
module F = Hydra_netlist.Formats
module P = Hydra_core.Patterns

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- circuit catalogue ---- *)

let inputs prefix n = List.init n (fun i -> G.input (Printf.sprintf "%s%d" prefix i))

let adder_outputs (cout, sums) =
  ("cout", cout) :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums

let circuit_of_name name =
  let module A = Hydra_circuits.Arith.Make (G) in
  let module M = Hydra_circuits.Mux.Make (G) in
  let module R = Hydra_circuits.Regs.Make (G) in
  let module Alu = Hydra_circuits.Alu.Make (G) in
  let module Sorter = Hydra_circuits.Sorter.Make (G) in
  let int_param s =
    match String.index_opt s ':' with
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, None)
  in
  let base, param = int_param name in
  let p default = match param with Some s -> int_of_string s | None -> default in
  match base with
  | "fig1" ->
    let a = G.input "a" and b = G.input "b" in
    N.of_graph ~outputs:[ ("x", G.and2 (G.inv a) b) ]
  | "mux1" ->
    let c = G.input "c" and x = G.input "x" and y = G.input "y" in
    N.of_graph ~outputs:[ ("out", M.mux1 c x y) ]
  | "ripple" ->
    let n = p 8 in
    N.of_graph
      ~outputs:
        (adder_outputs (A.ripple_add G.zero (List.combine (inputs "x" n) (inputs "y" n))))
  | "cla-sklansky" | "cla-brent-kung" | "cla-kogge-stone" ->
    let n = p 8 in
    let network =
      match base with
      | "cla-sklansky" -> P.Sklansky
      | "cla-brent-kung" -> P.Brent_kung
      | _ -> P.Kogge_stone
    in
    N.of_graph
      ~outputs:
        (adder_outputs
           (A.cla_add ~network G.zero (List.combine (inputs "x" n) (inputs "y" n))))
  | "alu" ->
    let n = p 16 in
    let op = inputs "op" 4 in
    let ovfl, r = Alu.alu op (inputs "x" n) (inputs "y" n) in
    N.of_graph
      ~outputs:
        (("ovfl", ovfl) :: List.mapi (fun i s -> (Printf.sprintf "r%d" i, s)) r)
  | "regfile1" ->
    let k = p 4 in
    let a, b =
      R.regfile1 k (G.input "ld") (inputs "d" k) (inputs "sa" k) (inputs "sb" k)
        (G.input "x")
    in
    N.of_graph ~outputs:[ ("a", a); ("b", b) ]
  | "sorter" ->
    let n, w =
      match param with
      | Some s -> (
          match String.split_on_char 'x' s with
          | [ a; b ] -> (int_of_string a, int_of_string b)
          | _ -> failwith "sorter:<n>x<w>")
      | None -> (4, 4)
    in
    let words = List.init n (fun i -> inputs (Printf.sprintf "w%d_" i) w) in
    let sorted = Sorter.sort words in
    N.of_graph
      ~outputs:
        (List.concat
           (List.mapi
              (fun i word ->
                List.mapi
                  (fun j b -> (Printf.sprintf "o%d_%d" i j, b))
                  word)
              sorted))
  | "secded" ->
    (* SECDED-protected 4-bit register next to an unprotected copy: the
       fault-campaign graceful-degradation demo *)
    let module E = Hydra_circuits.Ecc.Protected (G) in
    let data = inputs "d" 4 in
    let dec, single, double = E.secded_reg data in
    let plain = E.plain_pipeline data in
    N.of_graph
      ~outputs:
        (List.mapi (fun i s -> (Printf.sprintf "p%d" i, s)) dec
        @ [ ("single", single); ("double", double) ]
        @ List.mapi (fun i s -> (Printf.sprintf "u%d" i, s)) plain)
  | "wallace" ->
    (* registered Wallace-tree multiplier: the deep-cone benchmark
       circuit, here for `analyze --sweep` and timing runs *)
    let n = p 16 in
    let module W = Hydra_circuits.Wallace.Make (G) in
    let prod = W.multw (inputs "x" n) (inputs "y" n) in
    let regd = List.map G.dff prod in
    N.of_graph
      ~outputs:(List.mapi (fun i s -> (Printf.sprintf "p%d" i, s)) regd)
  | "cpu" ->
    let mem_bits = p 6 in
    let module Sys_g = Hydra_cpu.System.Make (G) in
    let word n = inputs n 16 in
    let outs =
      Sys_g.system ~mem_bits
        {
          Sys_g.start = G.input "start";
          dma = G.input "dma";
          dma_a = word "da";
          dma_d = word "dd";
        }
    in
    N.of_graph
      ~outputs:
        (("halted", outs.Sys_g.halted)
        :: List.mapi
             (fun i s -> (Printf.sprintf "pc%d" i, s))
             outs.Sys_g.dp.Sys_g.D.pc
        @ List.mapi
            (fun i s -> (Printf.sprintf "r%d" i, s))
            outs.Sys_g.dp.Sys_g.D.r)
  | _ ->
    failwith
      (Printf.sprintf
         "unknown circuit %S (try fig1, mux1, ripple:8, cla-sklansky:16, \
          alu:16, regfile1:4, sorter:4x4, secded, wallace:16, cpu:6)"
         name)

(* ---- asm ---- *)

let asm_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let words = Hydra_cpu.Asm.assemble (read_file file) in
    List.iter (fun w -> Printf.printf "%04x\n" w) words
  in
  Cmd.v (Cmd.info "asm" ~doc:"Assemble a source file to hex words")
    Term.(const run $ file)

(* ---- dis ---- *)

let dis_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let words =
      read_file file |> String.split_on_char '\n'
      |> List.filter_map (fun l ->
             let l = String.trim l in
             if l = "" then None else Some (int_of_string ("0x" ^ l)))
    in
    print_string (Hydra_cpu.Asm.disassemble words)
  in
  Cmd.v (Cmd.info "dis" ~doc:"Disassemble hex words (one per line)")
    Term.(const run $ file)

(* ---- run ---- *)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"print the per-cycle trace")
  in
  let behavioural =
    Arg.(
      value & flag
      & info [ "behavioural" ]
          ~doc:"use the behavioural-memory driver (fast, 64K words)")
  in
  let mem_bits =
    Arg.(
      value & opt int 6
      & info [ "mem-bits" ] ~doc:"structural memory address bits")
  in
  let max_cycles =
    Arg.(value & opt int 20000 & info [ "max-cycles" ] ~doc:"cycle budget")
  in
  let run file trace behavioural mem_bits max_cycles =
    let program = Hydra_cpu.Asm.assemble (read_file file) in
    let res =
      if behavioural then
        Hydra_cpu.Driver.run_behavioural ~max_cycles ~collect_trace:trace
          program
      else
        Hydra_cpu.Driver.run_structural ~mem_bits ~max_cycles
          ~collect_trace:trace program
    in
    if trace then
      List.iter
        (fun e -> print_endline (Hydra_cpu.Driver.trace_fmt e))
        res.Hydra_cpu.Driver.trace;
    Printf.printf "halted=%b cycles=%d\n" res.Hydra_cpu.Driver.halted
      res.Hydra_cpu.Driver.cycles;
    let regs = Hydra_cpu.Driver.final_registers res in
    Array.iteri
      (fun i v -> if v <> 0 then Printf.printf "R%-2d = %5d (0x%04x)\n" i v v)
      regs;
    List.iter
      (function
        | Hydra_cpu.Golden.Mem_write { addr; value } ->
          Printf.printf "mem[%04x] := %d\n" addr value
        | _ -> ())
      res.Hydra_cpu.Driver.events
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Assemble and run a program on the gate-level CPU")
    Term.(const run $ file $ trace $ behavioural $ mem_bits $ max_cycles)

(* ---- netlist ---- *)

let netlist_cmd =
  let circuit_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT") in
  let format =
    Arg.(
      value
      & opt (enum [ ("paper", `Paper); ("dot", `Dot); ("verilog", `Verilog);
                    ("stats", `Stats); ("hydra", `Hydra) ])
          `Paper
      & info [ "format"; "f" ]
          ~doc:"output format: paper, dot, verilog, stats, hydra (loadable)")
  in
  let optimize =
    Arg.(
      value & flag
      & info [ "optimize"; "O" ]
          ~doc:"run constant folding / dedup / dead-gate removal first")
  in
  let run name format optimize =
    let nl = circuit_of_name name in
    let nl = if optimize then Hydra_netlist.Optimize.optimize nl else nl in
    match format with
    | `Paper -> print_endline (F.to_paper_string nl)
    | `Dot -> print_string (F.to_dot ~name:"circuit" nl)
    | `Verilog -> print_string (F.to_verilog ~name:"circuit" nl)
    | `Stats -> print_endline (F.stats_string nl)
    | `Hydra -> print_string (Hydra_netlist.Serial.to_string nl)
  in
  Cmd.v (Cmd.info "netlist" ~doc:"Emit the netlist of a named circuit")
    Term.(const run $ circuit_arg $ format $ optimize)

(* The named-circuit catalogue `lint --all` and `faults --all` sweep:
   every circuit family the CLI knows, at the sizes CI pins (fig1 …
   cpu:8), plus the sizes the examples exercise (ripple:12 /
   cla-sklansky:12 are timing_glitch's adders). *)
let lint_catalogue =
  [
    "fig1"; "mux1"; "ripple:8"; "ripple:12"; "cla-sklansky:8";
    "cla-sklansky:12"; "cla-brent-kung:8"; "cla-kogge-stone:8"; "alu:16";
    "regfile1:4"; "sorter:4x4"; "secded"; "cpu:6"; "cpu:8";
  ]

(* ---- faults ---- *)

(* Load a target the way lint does: a saved netlist file if the path
   exists, a named catalogue circuit otherwise. *)
let load_target ~cmd target =
  try
    if Sys.file_exists target then Hydra_netlist.Serial.of_file target
    else circuit_of_name target
  with
  | Hydra_netlist.Serial.Parse_error { line; message } ->
    Printf.eprintf "%s: %s: parse error at line %d: %s\n" cmd target line
      message;
    exit 1
  | Failure m ->
    Printf.eprintf "%s: %s: %s\n" cmd target m;
    exit 1

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let faults_cmd =
  let module C = Hydra_verify.Campaign in
  let targets =
    Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT|FILE")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"campaign the whole named-circuit catalogue")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "quick catalogue sweep (the CI job): every fault model, at \
             most 61 faults and 16 cycles per circuit")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit machine-readable JSON")
  in
  let model =
    Arg.(
      value
      & opt
          (enum
             [ ("stuck", `Stuck); ("seu", `Seu);
               ("intermittent", `Intermittent); ("all", `All) ])
          `Stuck
      & info [ "model" ] ~doc:"fault model: stuck, seu, intermittent, all")
  in
  let cycles =
    Arg.(value & opt int 32 & info [ "cycles" ] ~doc:"random-stimulus cycles")
  in
  let seed =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~doc:"stimulus and intermittent-coin seed")
  in
  let rate =
    Arg.(
      value & opt float 0.1
      & info [ "rate" ] ~doc:"intermittent per-cycle flip probability")
  in
  let at =
    Arg.(value & opt int 0 & info [ "at" ] ~doc:"SEU injection cycle")
  in
  let max_faults =
    Arg.(
      value & opt (some int) None
      & info [ "max-faults" ] ~doc:"truncate the fault list")
  in
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~doc:"domains for chunked campaigns")
  in
  let status =
    Arg.(
      value & opt_all string []
      & info [ "status" ]
          ~doc:
            "output excluded from the divergence comparison and sampled \
             as a per-fault status flag (repeatable; e.g. --status single)")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print every verdict")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:
            "wall-clock budget per campaign in seconds; past it the \
             campaign fails with a deadline-exceeded error instead of \
             running on")
  in
  let retries =
    Arg.(
      value & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "retry transiently-failed campaign chunks up to N extra \
             times with exponential backoff")
  in
  let max_lanes =
    Arg.(
      value & opt (some int) None
      & info [ "max-lanes" ] ~docv:"LANES"
          ~doc:
            "admission budget in engine lanes: over-budget campaigns \
             degrade to fewer slab words before being shed")
  in
  let run targets all smoke json model cycles seed rate at max_faults domains
      status verbose deadline retries max_lanes =
    let module R = Hydra_engine.Resilience in
    let retry =
      Option.map (fun n -> R.retry ~max_attempts:(max 1 (n + 1)) ()) retries
    in
    let admission =
      Option.map
        (fun n ->
          try R.admission ~max_lanes:n ()
          with Invalid_argument _ ->
            Printf.eprintf
              "faults: --max-lanes %d: budget must be at least one 62-lane \
               word\n"
              n;
            exit 2)
        max_lanes
    in
    let targets = (if all || smoke then lint_catalogue else []) @ targets in
    if targets = [] then begin
      prerr_endline
        "faults: no targets (name circuits/files, or use --all / --smoke)";
      exit 2
    end;
    let model = if smoke then `All else model in
    let cycles = if smoke then 16 else cycles in
    let max_faults = if smoke then Some 61 else max_faults in
    let json_blocks =
      List.map
        (fun target ->
          let nl = load_target ~cmd:"faults" target in
          let sites () =
            List.sort_uniq compare (List.map C.site_of (C.all_stuck_at nl))
          in
          let faults_of = function
            | `Stuck -> C.all_stuck_at nl
            | `Seu -> C.all_seu ~at_cycle:at nl
            | `Intermittent ->
              List.map (fun site -> C.Intermittent { site; rate; seed })
                (sites ())
          in
          let faults =
            match model with
            | `All -> faults_of `Stuck @ faults_of `Seu @ faults_of `Intermittent
            | (`Stuck | `Seu | `Intermittent) as m -> faults_of m
          in
          let total = List.length faults in
          let faults =
            match max_faults with
            | Some n when total > n -> take n faults
            | _ -> faults
          in
          let truncated = List.length faults < total in
          let stimulus = C.random_stimulus ~seed ~cycles nl in
          let report =
            match
              C.run ?domains ~status_outputs:status ?deadline ?retry
                ?admission nl ~faults ~stimulus ~cycles
            with
            | r -> r
            | exception R.Deadline_exceeded { elapsed; _ } ->
              Printf.eprintf
                "faults: %s: deadline of %.3g s exceeded after %.3f s\n"
                target (Option.value deadline ~default:0.0) elapsed;
              exit 1
            | exception R.Shed _ ->
              Printf.eprintf
                "faults: %s: shed by the admission controller (budget %d \
                 lanes is less than one 62-lane word free)\n"
                target
                (Option.value max_lanes ~default:0);
              exit 1
          in
          if json then
            Printf.sprintf "{\"target\":%s,\"components\":%d,\"report\":%s}"
              (Hydra_analyze.Diagnostic.json_string target)
              (N.size nl) (C.to_json report)
          else begin
            Printf.printf "== %s (%d components) ==\n" target (N.size nl);
            if truncated then
              Printf.printf "  (fault list truncated to %d of %d)\n"
                report.C.total total;
            Printf.printf "  %s\n" (C.summary_string report);
            (match C.mean_latency report with
            | Some l ->
              Printf.printf "  mean detection latency: %.2f cycles\n" l
            | None -> ());
            if verbose then
              List.iter
                (fun v -> Printf.printf "    %s\n" (C.verdict_to_string v))
                report.C.verdicts;
            ""
          end)
        targets
    in
    if json then
      Printf.printf "{\"version\":1,\"results\":[%s]}\n"
        (String.concat "," json_blocks)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-injection campaigns (stuck-at, SEU, intermittent) on named \
          circuits or saved netlist files: every fault classified \
          detected/latent/masked against a golden lane")
    Term.(
      const run $ targets $ all $ smoke $ json $ model $ cycles $ seed $ rate
      $ at $ max_faults $ domains $ status $ verbose $ deadline $ retries
      $ max_lanes)

(* ---- lint ---- *)

let lint_cmd =
  let module D = Hydra_analyze.Diagnostic in
  let module Lint = Hydra_analyze.Lint in
  let module Certify = Hydra_analyze.Certify in
  let targets =
    Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT|FILE")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"lint the whole named-circuit catalogue")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit machine-readable JSON")
  in
  let sarif =
    Arg.(
      value & flag
      & info [ "sarif" ] ~doc:"emit SARIF 2.1.0 (for code-review tooling)")
  in
  let fanout_threshold =
    Arg.(
      value
      & opt int Lint.default_config.Lint.fanout_threshold
      & info [ "fanout-threshold" ] ~doc:"fanout-hotspot rule threshold")
  in
  let path_budget =
    Arg.(
      value & opt (some int) None
      & info [ "path-budget" ]
          ~doc:"critical-path budget in gate delays (error when exceeded)")
  in
  let xsim_cycles =
    Arg.(
      value
      & opt int Lint.default_config.Lint.xsim_cycles
      & info [ "xsim-cycles" ]
          ~doc:"cycles of X-propagation for the uninit-state rule")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "also translation-validate Optimize and Layout.rank_major on \
             each circuit")
  in
  let run targets all json sarif fanout_threshold path_budget xsim_cycles
      certify =
    let config = { Lint.fanout_threshold; path_budget; xsim_cycles } in
    let targets =
      (if all then lint_catalogue else []) @ targets
    in
    if json && sarif then begin
      prerr_endline "lint: --json and --sarif are mutually exclusive";
      exit 2
    end;
    if targets = [] then begin
      prerr_endline
        "lint: no targets (name circuits/files, or use --all for the \
         catalogue)";
      exit 2
    end;
    let failed = ref false in
    let sarif_acc = ref [] in
    let json_blocks =
      List.map
        (fun target ->
          let nl =
            try
              if Sys.file_exists target then
                Hydra_netlist.Serial.of_file target
              else circuit_of_name target
            with
            | Hydra_netlist.Serial.Parse_error { line; message } ->
              Printf.eprintf "lint: %s: parse error at line %d: %s\n" target
                line message;
              exit 1
            | Failure m ->
              Printf.eprintf "lint: %s: %s\n" target m;
              exit 1
          in
          let diags = Lint.run ~config nl in
          let certs =
            if certify then
              [ snd (Certify.optimize nl); snd (Certify.rank_major nl) ]
            else []
          in
          if D.count_errors diags > 0 then failed := true;
          if List.exists (fun c -> not (Certify.certified c)) certs then
            failed := true;
          if sarif then begin
            sarif_acc := (target, diags) :: !sarif_acc;
            ""
          end
          else if json then
            Printf.sprintf
              "{\"target\":%s,\"components\":%d,\"diagnostics\":%s,\"certificates\":[%s]}"
              (D.json_string target) (N.size nl)
              (D.list_to_json diags)
              (String.concat ","
                 (List.map
                    (fun c ->
                      Printf.sprintf "{\"certified\":%b,\"detail\":%s}"
                        (Certify.certified c)
                        (D.json_string (Certify.describe c)))
                    certs))
          else begin
            Printf.printf "== %s (%d components) ==\n" target (N.size nl);
            if diags = [] then print_endline "  clean"
            else
              List.iter
                (fun d -> Printf.printf "  %s\n" (D.to_string d))
                diags;
            List.iter
              (fun c -> Printf.printf "  certify: %s\n" (Certify.describe c))
              certs;
            ""
          end)
        targets
    in
    if sarif then
      print_endline (D.to_sarif ~tool:"hydra-lint" (List.rev !sarif_acc));
    if json then
      Printf.printf "{\"version\":1,\"results\":[%s]}\n"
        (String.concat "," json_blocks);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Lint named circuits or saved netlist files (and optionally \
          certify their transforms); exits 1 on any error-severity \
          diagnostic")
    Term.(
      const run $ targets $ all $ json $ sarif $ fanout_threshold
      $ path_budget $ xsim_cycles $ certify)

(* ---- analyze ---- *)

let analyze_cmd =
  let module D = Hydra_analyze.Diagnostic in
  let module Df = Hydra_analyze.Dataflow in
  let module Sweep = Hydra_analyze.Sweep in
  let module Certify = Hydra_analyze.Certify in
  let targets =
    Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT|FILE")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"analyze the whole named-circuit catalogue")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"emit machine-readable JSON")
  in
  let sarif =
    Arg.(
      value & flag
      & info [ "sarif" ] ~doc:"emit SARIF 2.1.0 (for code-review tooling)")
  in
  let sweep =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "run the dataflow-driven sweep and translation-validate the \
             result (exits 1 if any run is refuted)")
  in
  let passes =
    Arg.(
      value & opt int 2
      & info [ "passes" ] ~doc:"random-stimulus passes for cross-checking")
  in
  let cycles =
    Arg.(value & opt int 16 & info [ "cycles" ] ~doc:"cycles per pass")
  in
  let seed =
    Arg.(value & opt int 0xdf1 & info [ "seed" ] ~doc:"stimulus seed")
  in
  let no_crosscheck =
    Arg.(
      value & flag
      & info [ "no-crosscheck" ]
          ~doc:"skip the simulation cross-check of the analysis verdicts")
  in
  let run targets all json sarif sweep passes cycles seed no_crosscheck =
    let targets = (if all then lint_catalogue else []) @ targets in
    if json && sarif then begin
      prerr_endline "analyze: --json and --sarif are mutually exclusive";
      exit 2
    end;
    if targets = [] then begin
      prerr_endline
        "analyze: no targets (name circuits/files, or use --all for the \
         catalogue)";
      exit 2
    end;
    let failed = ref false in
    let sarif_acc = ref [] in
    let json_blocks =
      List.map
        (fun target ->
          let nl = load_target ~cmd:"analyze" target in
          let df =
            try Df.create nl
            with Invalid_argument m ->
              Printf.eprintf "analyze: %s: %s\n" target m;
              exit 1
          in
          let stuck = Df.stuck_registers df in
          let consts = Df.constant_components df in
          let unobs = Df.masked df in
          let classes = Df.classes df in
          let rx_outputs = Df.reaching_x_outputs df in
          let cross =
            if no_crosscheck then None
            else Some (Df.crosscheck ~passes ~cycles ~seed df)
          in
          (match cross with Some (Error _) -> failed := true | _ -> ());
          let swept =
            if sweep then begin
              let _post, report, outcome =
                Certify.sweep ~passes ~cycles ~seed nl
              in
              if not (Certify.certified outcome) then failed := true;
              Some (report, outcome)
            end
            else None
          in
          if sarif then begin
            sarif_acc := (target, Df.diagnostics df) :: !sarif_acc;
            ""
          end
          else if json then begin
            let pair_json (i, b) =
              Printf.sprintf "{\"component\":%d,\"value\":%d}" i
                (Bool.to_int b)
            in
            let ints l = String.concat "," (List.map string_of_int l) in
            Printf.sprintf
              "{\"target\":%s,\"components\":%d,\"stuck_registers\":[%s],\"constants\":[%s],\"unobservable\":[%s],\"classes\":[%s],\"reaching_x_outputs\":[%s],\"crosscheck\":%s%s}"
              (D.json_string target) (N.size nl)
              (String.concat "," (List.map pair_json stuck))
              (String.concat "," (List.map pair_json consts))
              (ints unobs)
              (String.concat ","
                 (List.map (fun c -> "[" ^ ints c ^ "]") classes))
              (String.concat "," (List.map D.json_string rx_outputs))
              (D.json_string
                 (match cross with
                 | None -> "skipped"
                 | Some (Ok ()) -> "ok"
                 | Some (Error m) -> "failed: " ^ m))
              (match swept with
              | None -> ""
              | Some (r, outcome) ->
                Printf.sprintf
                  ",\"sweep\":{\"before\":%d,\"after\":%d,\"constants\":%d,\"merged\":%d,\"certified\":%b}"
                  r.Sweep.before r.Sweep.after r.Sweep.constants
                  r.Sweep.merged
                  (Certify.certified outcome))
          end
          else begin
            Printf.printf "== %s (%d components) ==\n" target (N.size nl);
            (match stuck with
            | [] -> print_endline "  stuck registers: none"
            | l ->
              Printf.printf "  stuck registers: %d (%s)\n" (List.length l)
                (String.concat ", "
                   (List.map
                      (fun (i, b) ->
                        Printf.sprintf "%s=%d" (N.describe nl i)
                          (Bool.to_int b))
                      (take 8 l))));
            Printf.printf "  sequential constants: %d component(s)\n"
              (List.length consts);
            Printf.printf "  unobservable logic: %d component(s)\n"
              (List.length unobs);
            Printf.printf
              "  equivalence classes: %d class(es), %d mergeable duplicate(s)\n"
              (List.length classes)
              (List.fold_left (fun acc c -> acc + List.length c - 1) 0 classes);
            (match rx_outputs with
            | [] -> print_endline "  reaching-X outputs: none"
            | l ->
              Printf.printf "  reaching-X outputs: %s\n"
                (String.concat ", " l));
            List.iter
              (fun (name, s) ->
                Printf.printf "  fixpoint %-10s %d visits, %d updates\n" name
                  s.Df.visits s.Df.updates)
              (Df.stats df);
            (match cross with
            | None -> print_endline "  crosscheck: skipped"
            | Some (Ok ()) ->
              Printf.printf "  crosscheck: ok (%d pass(es) x %d cycles)\n"
                passes cycles
            | Some (Error m) -> Printf.printf "  crosscheck: FAILED — %s\n" m);
            (match swept with
            | None -> ()
            | Some (r, outcome) ->
              Printf.printf "  sweep: %s\n" (Sweep.describe r);
              Printf.printf "  certify: %s\n" (Certify.describe outcome));
            ""
          end)
        targets
    in
    if sarif then
      print_endline (D.to_sarif ~tool:"hydra-analyze" (List.rev !sarif_acc));
    if json then
      Printf.printf "{\"version\":1,\"results\":[%s]}\n"
        (String.concat "," json_blocks);
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Fixpoint dataflow analyses (sequential constants, observability, \
          reaching-X, equivalence classes) over named circuits or saved \
          netlist files, cross-checked against simulation; optionally run \
          the certified sweep.  Exits 1 on a failed cross-check or a \
          refuted sweep")
    Term.(
      const run $ targets $ all $ json $ sarif $ sweep $ passes $ cycles
      $ seed $ no_crosscheck)

(* ---- timing ---- *)

let timing_cmd =
  let circuit_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT") in
  let run name =
    let nl = circuit_of_name name in
    let lv = L.compute nl in
    Printf.printf "%s\n" (F.stats_string nl);
    Printf.printf "critical path: %d gate delays\n" lv.L.critical_path;
    if lv.L.cyclic <> [] then
      Printf.printf "WARNING: %d components on combinational cycles\n"
        (List.length lv.L.cyclic);
    let widths = Array.map Array.length lv.L.by_level in
    Printf.printf "levels: %d; widest level: %d components\n"
      (Array.length widths)
      (Array.fold_left max 0 widths)
  in
  Cmd.v (Cmd.info "timing" ~doc:"Static timing and size report")
    Term.(const run $ circuit_arg)

(* ---- sim ---- *)

let sim_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST") in
  let cycles = Arg.(value & opt int 8 & info [ "cycles"; "n" ] ~doc:"cycles to run") in
  let drives =
    Arg.(
      value & opt_all string []
      & info [ "drive"; "d" ]
          ~doc:"stimulus: NAME=0101 (one bit per cycle, last value holds)")
  in
  let run file cycles drives =
    let nl = Hydra_netlist.Serial.of_file file in
    let stimuli =
      List.map
        (fun spec ->
          match String.index_opt spec '=' with
          | None -> failwith ("bad --drive " ^ spec)
          | Some i ->
            let name = String.sub spec 0 i in
            let bits =
              String.sub spec (i + 1) (String.length spec - i - 1)
              |> Hydra_core.Bitvec.of_string
            in
            Hydra_engine.Testbench.Bit_values (name, bits))
        drives
    in
    let r =
      Hydra_engine.Testbench.run ~cycles ~stimuli ~expectations:[] nl
    in
    print_string
      (Hydra_engine.Wave.render
         (List.map (fun (n, vs) -> Hydra_engine.Wave.bit n vs) r.Hydra_engine.Testbench.observed))
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Simulate a saved netlist (see 'netlist -f hydra') with scripted inputs")
    Term.(const run $ file $ cycles $ drives)

(* ---- equiv ---- *)

(* Slab-vs-wide equivalence sweep: every catalogue circuit (or the
   named targets), each slab width in --k, gated and ungated, checked
   word-for-word under Equiv's random sequential stimulus.  CI runs
   `hydra equiv --all --smoke`, so a slab kernel regression fails the
   pipeline, not just the bench. *)
let equiv_cmd =
  let module E = Hydra_verify.Equiv in
  let targets =
    Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT|FILE")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"sweep the whole named-circuit catalogue")
  in
  let ks =
    Arg.(
      value
      & opt (list int) [ 1; 4; 8 ]
      & info [ "k" ] ~doc:"slab widths (words per signal) to check")
  in
  let passes =
    Arg.(
      value & opt int 2
      & info [ "passes" ] ~doc:"random-stimulus passes per configuration")
  in
  let cycles =
    Arg.(value & opt int 16 & info [ "cycles" ] ~doc:"cycles per pass")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"quick sweep (the CI job): one pass of 8 cycles")
  in
  let simd =
    Arg.(
      value & flag
      & info [ "simd" ]
          ~doc:
            "also check the C-stub kernels (vectorized where the build \
             supports it, scalar C elsewhere)")
  in
  let tuning =
    Arg.(
      value
      & opt (some string) None
      & info [ "tuning" ] ~docv:"SPEC"
          ~doc:
            "kernel tuning spec, e.g. block-words=1024,block-gates=0,\
             hot-after=4,probe-period=128 (unset keys keep defaults)")
  in
  let run targets all ks passes cycles smoke simd tuning =
    let targets = (if all then lint_catalogue else []) @ targets in
    if targets = [] then begin
      prerr_endline
        "equiv: no targets (name circuits/files, or use --all for the \
         catalogue)";
      exit 2
    end;
    if List.exists (fun k -> k < 1) ks then begin
      prerr_endline "equiv: --k values must be >= 1";
      exit 2
    end;
    let passes = if smoke then 1 else passes in
    let cycles = if smoke then 8 else cycles in
    let tuning =
      match tuning with
      | None -> None
      | Some spec -> (
        try Some (Hydra_engine.Kernel.tuning_of_spec spec)
        with Invalid_argument msg ->
          prerr_endline ("equiv: " ^ msg);
          exit 2)
    in
    let simds = if simd then [ false; true ] else [ false ] in
    let failed = ref false in
    List.iter
      (fun target ->
        let nl = load_target ~cmd:"equiv" target in
        let bad = ref [] in
        let nconfigs = ref 0 in
        List.iter
          (fun k ->
            List.iter
              (fun gating ->
                List.iter
                  (fun simd ->
                    incr nconfigs;
                    match
                      E.slab_vs_wide ~passes ~cycles ~k ~gating ~simd ?tuning
                        nl
                    with
                    | E.Seq_equivalent -> ()
                    | E.Seq_mismatch { output; cycle; _ } ->
                      bad :=
                        ( Printf.sprintf "k=%d%s%s" k
                            (if gating then " gated" else "")
                            (if simd then " simd" else ""),
                          output, cycle )
                        :: !bad)
                  simds)
              [ false; true ])
          ks;
        if !bad = [] then
          Printf.printf "%-18s ok (%d configurations, %d pass(es) x %d cycles)\n"
            target !nconfigs passes cycles
        else begin
          failed := true;
          List.iter
            (fun (label, output, cycle) ->
              Printf.printf
                "%-18s MISMATCH %s: output %s diverges from wide at cycle %d\n"
                target label output cycle)
            (List.rev !bad)
        end)
      targets;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:
         "Check the slab engine against the wide engine on named circuits \
          or saved netlist files (random sequential stimulus, every word, \
          gated and ungated); exits 1 on any mismatch")
    Term.(const run $ targets $ all $ ks $ passes $ cycles $ smoke $ simd
          $ tuning)

(* ---- algo ---- *)

let algo_cmd =
  let run () =
    print_string (Hydra_cpu.Control.to_string Hydra_cpu.Control.algorithm)
  in
  Cmd.v
    (Cmd.info "algo"
       ~doc:"Print the processor's control algorithm (paper section 6.2)")
    Term.(const run $ const ())

let () =
  let doc = "Hydra: functional hardware description in OCaml" in
  let info = Cmd.info "hydra" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ asm_cmd; dis_cmd; run_cmd; netlist_cmd; lint_cmd; analyze_cmd;
            timing_cmd; faults_cmd; equiv_cmd; sim_cmd; algo_cmd ]))
