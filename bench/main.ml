(* Benchmark and reproduction harness.

   One section per experiment in DESIGN.md's index (E1..E24): the paper is
   an overview without numeric tables, so the reproducible artifacts are
   its figures, inline code/outputs and quantitative claims.  Each section
   regenerates one of them; timing sections use Bechamel (OLS over the
   monotonic clock) or wall-clock loops for the longer-running engines. *)

module Bit = Hydra_core.Bit
module Bitvec = Hydra_core.Bitvec
module P = Hydra_core.Patterns
module S = Hydra_core.Stream_sim
module D = Hydra_core.Depth
module G = Hydra_core.Graph
module N = Hydra_netlist.Netlist
module L = Hydra_netlist.Levelize
module F = Hydra_netlist.Formats
module Compiled = Hydra_engine.Compiled
module Wide = Hydra_engine.Compiled_wide
module Interp = Hydra_engine.Interp
module Parallel_sim = Hydra_engine.Parallel_sim
module Event = Hydra_engine.Event
module Pool = Hydra_parallel.Pool
module Equiv = Hydra_verify.Equiv
module Bdd = Hydra_verify.Bdd

let section id title = Printf.printf "\n=== %s: %s ===\n%!" id title
let row fmt = Printf.printf fmt

(* Machine-readable results: timing sections push (section, metric,
   value, unit) rows here — parallel/wide rows also carry the domain
   count and lane width so the trajectory is comparable across hosts;
   [--json path] writes them out so successive PRs can track the perf
   trajectory (see BENCH_results.json).  Any row carrying a [domains]
   count is also stamped with the host's core count: a sharded row that
   trails the single-instance engine is expected on a 1-core host, and
   without the stamp that reads as a regression. *)
let host_cores = Domain.recommended_domain_count ()

let results :
    (string * string * float * string * int option * int option * int option
    * float option * int option)
    list ref =
  ref []

(* [?wall_s] is the wall-clock spent producing the row and [?warmup] the
   number of warm-up iterations discarded before measuring — new rows
   must stamp both (the E27 convention extending [host_cores] from PR 5)
   so single-core CI numbers are interpretable. *)
let record ?domains ?lanes ?host_cores:hc ?wall_s ?warmup ~section:sec ~name
    ~value ~unit_ () =
  let hc =
    match (hc, domains) with
    | (Some _ as h), _ -> h
    | None, Some _ -> Some host_cores
    | None, None -> None
  in
  results := (sec, name, value, unit_, domains, lanes, hc, wall_s, warmup) :: !results

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path =
  match open_out path with
  | exception Sys_error msg ->
      Printf.eprintf "error: cannot write %s (%s)\n" path msg;
      exit 1
  | oc ->
  Printf.fprintf oc "{\n  \"results\": [\n";
  let rows = List.rev !results in
  List.iteri
    (fun i (sec, name, value, unit_, domains, lanes, hc, wall_s, warmup) ->
      let opt key = function
        | None -> ""
        | Some v -> Printf.sprintf ", \"%s\": %d" key v
      in
      let optf key = function
        | None -> ""
        | Some v -> Printf.sprintf ", \"%s\": %.6g" key v
      in
      Printf.fprintf oc
        "    {\"section\": \"%s\", \"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"%s%s%s%s%s}%s\n"
        (json_escape sec) (json_escape name) value (json_escape unit_)
        (opt "domains" domains) (opt "lanes" lanes) (opt "host_cores" hc)
        (optf "wall_s" wall_s) (opt "warmup" warmup)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"host_cores\": %d" host_cores;
  if host_cores = 1 then
    Printf.fprintf oc
      ",\n  \"note\": \"single-core host: rows with a domains count cannot \
       show parallel speedup, so sharded rates at or below the \
       single-instance engine are expected here, not a regression\"";
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Printf.printf "\nwrote %d result row(s) to %s\n" (List.length rows) path;
  if host_cores = 1 then
    print_endline
      "note: single-core host — domain-sharded rows cannot beat the \
       single-instance engine here; compare them only against runs with \
       matching host_cores"

(* Wall-clock timing helper: run [f] repeatedly for at least [min_time]
   seconds, return seconds per run. *)
let time_per_run ?(min_time = 0.2) f =
  f ();
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    f ();
    incr n;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !n

(* Bechamel helper: run the given tests, print ns/run per test. *)
let bechamel_run tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"bench" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) -> row "  %-40s %12.1f ns/run\n" name ns)
    (List.sort compare rows)

(* Circuit builders used across sections ------------------------------- *)

let ripple_netlist n =
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let module A = Hydra_circuits.Arith.Make (G) in
  let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
  N.of_graph
    ~outputs:
      (("cout", cout) :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)

let cla_netlist ~network n =
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let module A = Hydra_circuits.Arith.Make (G) in
  let cout, sums = A.cla_add ~network G.zero (List.combine xs ys) in
  N.of_graph
    ~outputs:
      (("cout", cout) :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)

(* A wide synthetic workload: [copies] independent [width]-bit CLA adders
   with registered outputs, giving wide levelized ranks for E10. *)
let wide_adder_netlist ~copies ~width =
  let module A = Hydra_circuits.Arith.Make (G) in
  let outs = ref [] in
  for c = 0 to copies - 1 do
    let xs = List.init width (fun i -> G.input (Printf.sprintf "x%d_%d" c i)) in
    let ys = List.init width (fun i -> G.input (Printf.sprintf "y%d_%d" c i)) in
    let cout, sums =
      A.cla_add ~network:P.Kogge_stone G.zero (List.combine xs ys)
    in
    let regd = List.map G.dff (cout :: sums) in
    outs := List.mapi (fun i s -> (Printf.sprintf "o%d_%d" c i, s)) regd @ !outs
  done;
  N.of_graph ~outputs:!outs

(* E1 ------------------------------------------------------------------- *)

let e1 () =
  section "E1" "Figure 1 circuit: out = and2 (inv a) b";
  let tt =
    Bit.truth_table ~inputs:2 (fun v ->
        match v with [ a; b ] -> [ Bit.and2 (Bit.inv a) b ] | _ -> assert false)
  in
  row "  a b | out\n";
  List.iter
    (fun (ins, outs) ->
      row "  %s | %s\n"
        (String.concat " " (List.map (fun b -> if b then "1" else "0") ins))
        (Bitvec.to_string outs))
    tt;
  D.reset ();
  let out = D.and2 (D.inv D.input) D.input in
  let r = D.report [ out ] in
  row "  path depth: %d gate delays, %d gates\n" r.D.critical_path r.D.gates

(* E2 ------------------------------------------------------------------- *)

let e2 () =
  section "E2" "Figure 2 multiplexer";
  let module M = Hydra_circuits.Mux.Make (Bit) in
  let tt =
    Bit.truth_table ~inputs:3 (fun v ->
        match v with [ c; x; y ] -> [ M.mux1 c x y ] | _ -> assert false)
  in
  row "  c x y | out\n";
  List.iter
    (fun (ins, outs) ->
      row "  %s | %s\n"
        (String.concat " " (List.map (fun b -> if b then "1" else "0") ins))
        (Bitvec.to_string outs))
    tt;
  let module MD = Hydra_circuits.Mux.Make (D) in
  D.reset ();
  let out = MD.mux1 D.input D.input D.input in
  row "  mux1 path depth: %d (inv -> and -> or)\n"
    (D.report [ out ]).D.critical_path

(* E3 ------------------------------------------------------------------- *)

let e3 () =
  section "E3" "reg1: stream semantics of feedback (paper 4.1/4.2)";
  let module R = Hydra_circuits.Regs.Make (S) in
  let ld = [ true; false; false; true; false; false ] in
  let x = [ true; false; false; false; false; false ] in
  let rows =
    S.simulate ~inputs:[ ld; x ] (fun ins ->
        match ins with [ l; v ] -> [ R.reg1 l v ] | _ -> assert false)
  in
  row "  cycle: ld x | reg1 output\n";
  List.iteri
    (fun i out ->
      row "  %5d:  %d %d | %d\n" i
        (Bool.to_int (List.nth ld i))
        (Bool.to_int (List.nth x i))
        (Bool.to_int (List.hd out)))
    rows;
  row "  (power-up 0; loads on ld=1; feedback is well founded)\n"

(* E4 ------------------------------------------------------------------- *)

let e4 () =
  section "E4" "netlist of the Figure 1 circuit, paper 4-tuple format";
  let a = G.input "a" and b = G.input "b" in
  let nl = N.of_graph ~outputs:[ ("x", G.and2 (G.inv a) b) ] in
  print_endline (F.to_paper_string nl)

(* E5 ------------------------------------------------------------------- *)

let e5 () =
  section "E5" "path-depth analysis: ripple adder critical path is linear";
  row "  %-6s %-12s %-12s %-10s\n" "n" "depth(Depth)" "depth(netl.)" "gates";
  List.iter
    (fun n ->
      let module A = Hydra_circuits.Arith.Make (D) in
      D.reset ();
      let ins = List.init n (fun _ -> (D.input, D.input)) in
      let cout, sums = A.ripple_add D.zero ins in
      let r = D.report (cout :: sums) in
      let nl_cp = L.critical_path (ripple_netlist n) in
      row "  %-6d %-12d %-12d %-10d\n" n r.D.critical_path nl_cp r.D.gates)
    [ 4; 8; 16; 32; 64 ]

(* E6 ------------------------------------------------------------------- *)

let e6 () =
  section "E6" "rippleAdd4 (explicit) = mscanr fullAdd (pattern), paper 5";
  let adder build =
    {
      Equiv.apply =
        (fun (type a) (module C : Hydra_core.Signal_intf.COMB with type t = a)
             v ->
          let module A = Hydra_circuits.Arith.Make (C) in
          let cin = List.hd v in
          let xs, ys = P.split_at 4 (List.tl v) in
          let cout, sums =
            match build with
            | `Explicit -> A.ripple_add4 cin (List.combine xs ys)
            | `Pattern -> A.ripple_add cin (List.combine xs ys)
          in
          cout :: sums);
    }
  in
  (match Equiv.bdd_equiv ~inputs:9 (adder `Explicit) (adder `Pattern) with
  | Equiv.Equivalent -> row "  BDD proof: EQUIVALENT (all 2^9 inputs)\n"
  | Equiv.Inequivalent _ -> row "  BDD proof: INEQUIVALENT (!!)\n");
  match Equiv.exhaustive ~inputs:9 (adder `Explicit) (adder `Pattern) with
  | Equiv.Equivalent -> row "  exhaustive check: EQUIVALENT\n"
  | Equiv.Inequivalent _ -> row "  exhaustive check: INEQUIVALENT (!!)\n"

(* E7 ------------------------------------------------------------------- *)

let e7 () =
  section "E7" "register file regfile1 (recursive, paper 5)";
  let module R = Hydra_circuits.Regs.Make (G) in
  List.iter
    (fun k ->
      let ld = G.input "ld" in
      let d = List.init k (fun i -> G.input (Printf.sprintf "d%d" i)) in
      let sa = List.init k (fun i -> G.input (Printf.sprintf "sa%d" i)) in
      let sb = List.init k (fun i -> G.input (Printf.sprintf "sb%d" i)) in
      let x = G.input "x" in
      let a, b = R.regfile1 k ld d sa sb x in
      let nl = N.of_graph ~outputs:[ ("a", a); ("b", b) ] in
      let st = N.stats nl in
      row "  k=%d: 2^%d registers -> %5d gates, %4d dffs, critical path %d\n" k
        k st.N.gates st.N.dffs (L.critical_path nl))
    [ 0; 2; 4; 6 ]

(* E8 ------------------------------------------------------------------- *)

let sum_loop_src =
  "; sum the integers 1..n (n at label n), result in R1\n\
  \  ldval R1,0[R0]\n\
  \  load R2,n[R0]\n\
   loop: cmpeq R3,R2,R0\n\
  \  jumpt R3,done[R0]\n\
  \  add R1,R1,R2\n\
  \  ldval R4,1[R0]\n\
  \  sub R2,R2,R4\n\
  \  jump loop[R0]\n\
   done: store R1,result[R0]\n\
  \  halt\n\
   n: data 10\n\
   result: data 0\n"

let e8 () =
  section "E8" "the RISC processor (paper 6): gate level vs golden model";
  let module Asm = Hydra_cpu.Asm in
  let module Golden = Hydra_cpu.Golden in
  let module Driver = Hydra_cpu.Driver in
  let program = Asm.assemble sum_loop_src in
  row "  program: sum 1..10 (%d words)\n" (List.length program);
  let res = Driver.run_structural ~mem_bits:6 program in
  let g = Golden.create ~mem_words:64 () in
  Golden.load_program g program;
  let golden_events = Golden.run g in
  row "  gate level: halted=%b in %d cycles\n" res.Driver.halted
    res.Driver.cycles;
  row "  golden:     halted=%b, predicted %d cycles, %d instructions\n"
    g.Golden.halted g.Golden.cycles g.Golden.instructions;
  row "  R1 (gate level) = %d, R1 (golden) = %d\n"
    (Driver.final_registers res).(1)
    (Golden.reg g 1);
  row "  event streams identical: %b\n" (res.Driver.events = golden_events);
  row "  trace (first 8 post-fetch cycles):\n";
  List.iteri
    (fun i e -> if i < 8 then row "  %s\n" (Driver.trace_fmt e))
    res.Driver.trace;
  (* netlist statistics of the whole system *)
  let module SysG = Hydra_cpu.System.Make (G) in
  let word n = List.init 16 (fun i -> G.input (Printf.sprintf "%s%d" n i)) in
  let outs =
    SysG.system ~mem_bits:6
      {
        SysG.start = G.input "start";
        dma = G.input "dma";
        dma_a = word "da";
        dma_d = word "dd";
      }
  in
  let nl =
    N.of_graph
      ~outputs:
        (("halted", outs.SysG.halted)
        :: List.mapi
             (fun i s -> (Printf.sprintf "pc%d" i, s))
             outs.SysG.dp.SysG.D.pc)
  in
  let st = N.stats nl in
  row
    "  full system netlist (64-word memory): %d components (%d gates, %d dffs)\n"
    st.N.total st.N.gates st.N.dffs;
  row "  critical path: %d gate delays\n" (L.critical_path nl)

(* E9 ------------------------------------------------------------------- *)

let e9 () =
  section "E9" "conciseness claim: CPU circuit specification size";
  let count file =
    try
      let ic = open_in file in
      let n = ref 0 and in_comment = ref false in
      (try
         while true do
           let line = String.trim (input_line ic) in
           let starts p =
             String.length line >= String.length p
             && String.sub line 0 (String.length p) = p
           in
           let ends p =
             String.length line >= String.length p
             && String.sub line (String.length line - String.length p)
                  (String.length p)
                = p
           in
           if !in_comment then begin
             if ends "*)" then in_comment := false
           end
           else if line = "" then ()
           else if starts "(*" then begin
             if not (ends "*)") then in_comment := true
           end
           else incr n
         done
       with End_of_file -> ());
      close_in ic;
      !n
    with Sys_error _ -> 0
  in
  let files =
    [
      "lib/cpu/datapath.ml"; "lib/cpu/control.ml"; "lib/cpu/control_circuit.ml";
      "lib/cpu/system.ml";
    ]
  in
  let total =
    List.fold_left
      (fun acc f ->
        let n = count f in
        row "  %-30s %4d code lines\n" f n;
        acc + n)
      0 files
  in
  row "  total CPU circuit specification: %d lines\n" total;
  row "  (paper claims ~200 lines of Hydra; OCaml is less terse than Haskell\n";
  row "   and our control algorithm is explicit data rather than quoted code)\n"

(* E10 ------------------------------------------------------------------ *)

let e10 () =
  section "E10" "parallel simulation (paper 4.3): fork-join pool vs SPMD";
  let cores = Domain.recommended_domain_count () in
  row "  host parallelism: %d core(s)%s\n" cores
    (if cores = 1 then
       " — wall-clock speedup impossible here; this measures coordination overhead"
     else "");
  let nl = wide_adder_netlist ~copies:256 ~width:16 in
  let st = N.stats nl in
  row "  workload: 256 independent 16-bit CLA adders (%d gates)\n" st.N.gates;
  let cycles = 20 in
  let seq_sim = Compiled.create nl in
  let t_seq =
    time_per_run (fun () ->
        Compiled.reset seq_sim;
        for _ = 1 to cycles do
          Compiled.step seq_sim
        done)
  in
  row "  %-28s %8.2f ms per %d cycles  (1.00x)\n" "sequential compiled"
    (t_seq *. 1000.0) cycles;
  record ~section:"E10" ~name:"sequential compiled"
    ~value:(float_of_int cycles /. t_seq)
    ~unit_:"cycles/s" ~domains:1 ();
  (* always include the host's recommended domain count in the sweep *)
  let domain_counts =
    List.sort_uniq compare (if cores = 1 then [ 2 ] else [ 2; 4; cores ])
  in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      let psim = Parallel_sim.create ~pool nl in
      let t_par =
        time_per_run (fun () ->
            Parallel_sim.reset psim;
            for _ = 1 to cycles do
              Parallel_sim.step psim
            done)
      in
      Pool.shutdown pool;
      record ~section:"E10"
        ~name:(Printf.sprintf "fork-join pool %d domains" domains)
        ~value:(float_of_int cycles /. t_par)
        ~unit_:"cycles/s" ~domains ();
      row "  %-28s %8.2f ms per %d cycles  (%.2fx)\n"
        (Printf.sprintf "fork-join pool (%d domains)" domains)
        (t_par *. 1000.0) cycles (t_seq /. t_par))
    domain_counts;
  List.iter
    (fun domains ->
      let ssim = Hydra_engine.Spmd.create ~domains nl in
      let t_spmd =
        time_per_run (fun () ->
            Hydra_engine.Spmd.reset ssim;
            for _ = 1 to cycles do
              Hydra_engine.Spmd.step ssim
            done)
      in
      Hydra_engine.Spmd.shutdown ssim;
      record ~section:"E10"
        ~name:(Printf.sprintf "SPMD spin-barrier %d domains" domains)
        ~value:(float_of_int cycles /. t_spmd)
        ~unit_:"cycles/s" ~domains ();
      row "  %-28s %8.2f ms per %d cycles  (%.2fx)\n"
        (Printf.sprintf "SPMD spin-barrier (%d dom.)" domains)
        (t_spmd *. 1000.0) cycles (t_seq /. t_spmd))
    domain_counts

(* E11 ------------------------------------------------------------------ *)

let e11 () =
  section "E11" "carry-lookahead family (ref [23]): depth vs size";
  row "  %-6s %-14s %-8s %-8s\n" "n" "network" "depth" "gates";
  List.iter
    (fun n ->
      let adders =
        ("ripple", `R)
        :: List.map
             (fun net -> (P.prefix_network_name net, `C net))
             P.all_prefix_networks
      in
      List.iter
        (fun (name, which) ->
          let module A = Hydra_circuits.Arith.Make (D) in
          D.reset ();
          let ins = List.init n (fun _ -> (D.input, D.input)) in
          let cout, sums =
            match which with
            | `R -> A.ripple_add D.zero ins
            | `C net -> A.cla_add ~network:net D.zero ins
          in
          let r = D.report (cout :: sums) in
          row "  %-6d %-14s %-8d %-8d\n" n name r.D.critical_path r.D.gates)
        adders;
      row "\n")
    [ 8; 16; 32; 64 ]

(* E12 ------------------------------------------------------------------ *)

let e12 () =
  section "E12" "simulator throughput: stream vs interpreted vs compiled";
  let n = 32 in
  let nl = cla_netlist ~network:P.Kogge_stone n in
  let cycles = 50 in
  let input_rows =
    List.init cycles (fun t -> List.init (2 * n) (fun i -> (t + i) mod 3 = 0))
  in
  let cols = Bitvec.columns input_rows in
  let names =
    List.init n (fun i -> Printf.sprintf "x%d" i)
    @ List.init n (fun i -> Printf.sprintf "y%d" i)
  in
  let inputs = List.combine names cols in
  let t_stream =
    time_per_run (fun () ->
        ignore
          (S.simulate ~inputs:cols ~cycles (fun ins ->
               let module A = Hydra_circuits.Arith.Make (S) in
               let xs, ys = P.split_at n ins in
               let cout, sums =
                 A.cla_add ~network:P.Kogge_stone S.zero (List.combine xs ys)
               in
               cout :: sums)))
  in
  let interp = Interp.create nl in
  let t_interp =
    time_per_run (fun () -> ignore (Interp.run interp ~inputs ~cycles))
  in
  let compiled = Compiled.create nl in
  let t_compiled =
    time_per_run (fun () -> ignore (Compiled.run compiled ~inputs ~cycles))
  in
  let per name t =
    record ~section:"E12" ~name ~value:(float_of_int cycles /. t)
      ~unit_:"cycles/s" ();
    row "  %-28s %10.1f us per %d cycles (%8.0f cycles/s)\n" name (t *. 1e6)
      cycles
      (float_of_int cycles /. t)
  in
  per "stream semantics (rebuild)" t_stream;
  per "netlist interpreter" t_interp;
  per "compiled (levelized)" t_compiled;
  row "  bechamel (single cycle, 32-bit kogge-stone adder):\n";
  let open Bechamel in
  bechamel_run
    [
      Test.make ~name:"compiled step"
        (Staged.stage (fun () -> Compiled.step compiled));
      Test.make ~name:"interp step" (Staged.stage (fun () -> Interp.step interp));
    ]

(* E13 ------------------------------------------------------------------ *)

let e13 () =
  section "E13" "BDD equivalence checking scale (paper 4.6)";
  row "  %-6s %-22s %-12s\n" "n" "proof" "time";
  (* variable order matters: interleaving the operand bits keeps adder
     BDDs linear (separating them is exponential) *)
  List.iter
    (fun n ->
      let adder build =
        {
          Equiv.apply =
            (fun (type a)
                 (module C : Hydra_core.Signal_intf.COMB with type t = a) v ->
              let module A = Hydra_circuits.Arith.Make (C) in
              let xs, ys = P.split_at n (P.unriffle v) in
              let cout, sums =
                match build with
                | `Ripple -> A.ripple_add C.zero (List.combine xs ys)
                | `Cla ->
                  A.cla_add ~network:P.Sklansky C.zero (List.combine xs ys)
              in
              cout :: sums);
        }
      in
      let t =
        time_per_run ~min_time:0.1 (fun () ->
            assert (
              Equiv.is_equivalent
                (Equiv.bdd_equiv ~inputs:(2 * n) (adder `Ripple) (adder `Cla))))
      in
      row "  %-6d %-22s %8.2f ms\n" n "ripple = sklansky CLA" (t *. 1000.0))
    [ 4; 8; 16; 24; 32 ]

(* E14 ------------------------------------------------------------------ *)

let e14 () =
  section "E14" "gate-delay model: settling and glitches (paper 3)";
  let n = 16 in
  let nl = ripple_netlist n in
  let cp = L.critical_path nl in
  let sim = Event.create nl in
  let set_word prefix v =
    List.iteri
      (fun i b -> Event.set_input sim (Printf.sprintf "%s%d" prefix i) b)
      (Bitvec.of_int ~width:n v)
  in
  set_word "x" 0;
  set_word "y" 0;
  ignore (Event.step sim);
  set_word "x" ((1 lsl n) - 1);
  set_word "y" 1;
  let r = Event.step sim in
  row "  16-bit ripple adder, carry-propagate worst case:\n";
  row "  critical path %d; settled at t=%d; %d transitions, %d glitches\n" cp
    r.Event.settle_time r.Event.transitions r.Event.glitches;
  row "  settle <= critical path: %b\n" (r.Event.settle_time <= cp);
  let nlc = cla_netlist ~network:P.Sklansky n in
  let simc = Event.create nlc in
  let set_word_c prefix v =
    List.iteri
      (fun i b -> Event.set_input simc (Printf.sprintf "%s%d" prefix i) b)
      (Bitvec.of_int ~width:n v)
  in
  set_word_c "x" 0;
  set_word_c "y" 0;
  ignore (Event.step simc);
  set_word_c "x" ((1 lsl n) - 1);
  set_word_c "y" 1;
  let rc = Event.step simc in
  row "  sklansky CLA settles at t=%d (critical path %d)\n" rc.Event.settle_time
    (L.critical_path nlc)

(* E15 ------------------------------------------------------------------ *)

let e15 () =
  section "E15" "bitonic sorting network via butterfly pattern";
  let module Sorter = Hydra_circuits.Sorter.Make (Bit) in
  let input = [ 7; 2; 9; 1; 12; 3; 8; 5 ] in
  let sorted =
    List.map Bitvec.to_int
      (Sorter.sort (List.map (Bitvec.of_int ~width:4) input))
  in
  row "  sort %s -> %s\n"
    (String.concat "," (List.map string_of_int input))
    (String.concat "," (List.map string_of_int sorted));
  row "  %-6s %-8s %-8s\n" "n" "depth" "gates";
  let module SD = Hydra_circuits.Sorter.Make (D) in
  List.iter
    (fun n ->
      D.reset ();
      let words = List.init n (fun _ -> List.init 8 (fun _ -> D.input)) in
      let outs = SD.sort words in
      let r = D.report (List.concat outs) in
      row "  %-6d %-8d %-8d\n" n r.D.critical_path r.D.gates)
    [ 2; 4; 8; 16; 32 ]

(* E16 ------------------------------------------------------------------ *)

let e16 () =
  section "E16" "stuck-at fault simulation: test quality (extension)";
  let module Fault = Hydra_verify.Fault in
  let module A = Hydra_circuits.Arith.Make (G) in
  let xs = List.init 8 (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init 8 (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let cout, sums = A.ripple_add G.zero (List.combine xs ys) in
  let nl =
    N.of_graph
      ~outputs:
        (("cout", cout)
        :: List.mapi (fun i s -> (Printf.sprintf "s%d" i, s)) sums)
  in
  row "  circuit: 8-bit ripple adder, %d stuck-at faults\n"
    (List.length (Fault.all_faults nl));
  row "  %-10s %-10s\n" "vectors" "coverage";
  List.iter
    (fun n ->
      let vectors = Fault.random_vectors ~seed:7 ~inputs:16 n in
      let cov = Fault.coverage nl ~vectors in
      row "  %-10d %6.1f%%\n" n (100.0 *. Fault.ratio cov))
    [ 1; 2; 4; 8; 16; 32 ];
  let tests, cov = Fault.generate_tests ~target:1.0 nl in
  row "  greedy generation: %d vectors reach %.1f%% coverage\n"
    (List.length tests)
    (100.0 *. Fault.ratio cov)

(* E17 ------------------------------------------------------------------ *)

let e17 () =
  section "E17" "X-propagation power-up analysis of the control circuit (extension)";
  let module Xsim = Hydra_engine.Xsim in
  let module CC = Hydra_cpu.Control_circuit.Make (G) in
  let build () =
    let start = G.input "start" in
    let ir_op = List.init 4 (fun i -> G.input (Printf.sprintf "op%d" i)) in
    let cond = G.input "cond" in
    let outs = CC.synthesize Hydra_cpu.Control.algorithm ~start ~ir_op ~cond in
    N.of_graph ~outputs:(("halted", outs.CC.halted) :: outs.CC.states)
  in
  let run respect_init =
    let sim = Xsim.create ~respect_init (build ()) in
    let drive s =
      Xsim.set_input_bool sim "start" s;
      for i = 0 to 3 do
        Xsim.set_input_bool sim (Printf.sprintf "op%d" i) false
      done;
      Xsim.set_input_bool sim "cond" false
    in
    drive true;
    let counts = ref [ Xsim.unknown_dffs sim ] in
    Xsim.step sim;
    drive false;
    for _ = 1 to 7 do
      counts := Xsim.unknown_dffs sim :: !counts;
      Xsim.step sim
    done;
    List.rev !counts
  in
  let fmt l = String.concat " " (List.map string_of_int l) in
  row "  unknown state flip flops per cycle:\n";
  row "  %-26s %s\n" "X power-up:" (fmt (run false));
  row "  %-26s %s\n" "documented dff0 power-up:" (fmt (run true));
  row "  (with X power-up the sticky halt latch stays unknown: the design\n";
  row "   relies on the paper's dff0 = 0 guarantee, and the analysis shows it)\n"

(* E18 ------------------------------------------------------------------ *)

let e18 () =
  section "E18" "multiplier ablation + netlist optimizer (extension)";
  row "  %-6s %-16s %-8s %-8s\n" "n" "multiplier" "depth" "gates";
  List.iter
    (fun n ->
      List.iter
        (fun (name, f) ->
          D.reset ();
          let xs = List.init n (fun _ -> D.input) in
          let ys = List.init n (fun _ -> D.input) in
          let r = D.report (f xs ys) in
          row "  %-6d %-16s %-8d %-8d\n" n name r.D.critical_path r.D.gates)
        [
          ("array (ripple)", (fun xs ys ->
               let module A = Hydra_circuits.Arith.Make (D) in
               A.multw xs ys));
          ("wallace + cla", (fun xs ys ->
               let module W = Hydra_circuits.Wallace.Make (D) in
               W.multw xs ys));
        ])
    [ 8; 16; 32 ];
  row "\n  optimizer on generic circuits (gates before -> after):\n";
  let module O = Hydra_netlist.Optimize in
  List.iter
    (fun (name, nl) ->
      let opt = O.optimize nl in
      row "  %-24s %5d -> %5d gates (critical path %d -> %d)\n" name
        (N.stats nl).N.gates
        (N.stats opt).N.gates (L.critical_path nl) (L.critical_path opt))
    [
      ("ripple 16", ripple_netlist 16);
      ("cla sklansky 16", cla_netlist ~network:P.Sklansky 16);
      ("cla kogge-stone 32", cla_netlist ~network:P.Kogge_stone 32);
    ]

(* E19 ------------------------------------------------------------------ *)

let e19 () =
  section "E19" "a second complete machine: the stack processor (extension)";
  let module SM = Hydra_cpu.Stack_machine in
  let program =
    [
      SM.Spush 0; SM.Spush 60; SM.Sstore; SM.Spush 10;
      SM.Sdup; SM.Sjz 15; SM.Sdup; SM.Spush 60; SM.Sload; SM.Sadd;
      SM.Spush 60; SM.Sstore; SM.Spush 1; SM.Ssub; SM.Sjump 4; SM.Shalt;
    ]
  in
  let c = SM.Driver.run ~mem_bits:6 program in
  let g = SM.Golden.create ~mem_words:64 () in
  SM.Golden.load_program g (SM.encode_program program);
  SM.Golden.run g;
  row "  program: sum 10..1 via the stack (%d instructions)\n"
    (List.length program);
  row "  gate level: halted=%b in %d cycles; golden predicts %d\n"
    c.SM.Driver.halted c.SM.Driver.cycles g.SM.Golden.cycles;
  row "  mem[60] = %d (circuit writes agree: %b)\n" g.SM.Golden.mem.(60)
    (List.exists (fun (a, v) -> a = 60 && v = 55) c.SM.Driver.mem_writes);
  (* netlist statistics *)
  let module SMG = SM.Make (G) in
  let word nm = List.init 16 (fun i -> G.input (Printf.sprintf "%s%d" nm i)) in
  let outs =
    SMG.system ~mem_bits:6
      { SMG.start = G.input "start"; dma = G.input "dma";
        dma_a = word "da"; dma_d = word "dd" }
  in
  let nl =
    N.of_graph
      ~outputs:
        (("halted", outs.SMG.halted)
        :: List.mapi (fun i s -> (Printf.sprintf "top%d" i, s)) outs.SMG.top)
  in
  let st = N.stats nl in
  row "  netlist: %d components (%d gates, %d dffs), critical path %d\n"
    st.N.total st.N.gates st.N.dffs (L.critical_path nl);
  row "  (control synthesized by the same delay-element compiler as the RISC)\n"

(* E20 ------------------------------------------------------------------ *)

(* A 64-bit Wallace-tree multiplier with registered outputs: a deep, wide
   combinational cone feeding dffs — the representative "big sequential
   circuit" for engine throughput. *)
let wallace_netlist n =
  let module W = Hydra_circuits.Wallace.Make (G) in
  let xs = List.init n (fun i -> G.input (Printf.sprintf "x%d" i)) in
  let ys = List.init n (fun i -> G.input (Printf.sprintf "y%d" i)) in
  let prod = W.multw xs ys in
  let regd = List.map G.dff prod in
  N.of_graph
    ~outputs:(List.mapi (fun i s -> (Printf.sprintf "p%d" i, s)) regd)

(* The full section-6 RISC system netlist (gate-level RAM included), as in
   E8. *)
let cpu_netlist () =
  let module SysG = Hydra_cpu.System.Make (G) in
  let word n = List.init 16 (fun i -> G.input (Printf.sprintf "%s%d" n i)) in
  let outs =
    SysG.system ~mem_bits:6
      {
        SysG.start = G.input "start";
        dma = G.input "dma";
        dma_a = word "da";
        dma_d = word "dd";
      }
  in
  N.of_graph
    ~outputs:
      (("halted", outs.SysG.halted)
      :: List.mapi (fun i s -> (Printf.sprintf "pc%d" i, s)) outs.SysG.dp.SysG.D.pc)

(* Measure one engine's throughput in gate evaluations per second: for
   the wide engine each pass of the gate arrays evaluates every gate in
   62 lanes at once, so its per-pass work counts 62x. *)
let e20 ?(min_time = 0.2) () =
  section "E20"
    "word-parallel wide engine: gate-evals/sec, scalar vs wide vs pool";
  row "  (%d lanes per word; `bench: scalar Compiled vs Compiled_wide vs \
       Parallel_sim`)\n"
    Wide.lanes;
  let bench_circuit cname nl ~cycles =
    let st = N.stats nl in
    let gates = float_of_int st.N.gates in
    row "  %s: %d gates, %d dffs, critical path %d\n" cname st.N.gates
      st.N.dffs (L.critical_path nl);
    let per_run = gates *. float_of_int cycles in
    let entry ?domains ?lanes name evals_per_sec baseline =
      record ?domains ?lanes ~section:"E20"
        ~name:(Printf.sprintf "%s %s" cname name)
        ~value:evals_per_sec ~unit_:"gate-evals/s" ();
      row "  %-28s %12.3g gate-evals/s  (%6.2fx)\n" name evals_per_sec
        (evals_per_sec /. baseline);
      evals_per_sec
    in
    let scalar = Compiled.create nl in
    let t_scalar =
      time_per_run ~min_time (fun () ->
          Compiled.reset scalar;
          for _ = 1 to cycles do
            Compiled.step scalar
          done)
    in
    let base = entry "compiled (scalar)" (per_run /. t_scalar) (per_run /. t_scalar) in
    let scalar_opt = Compiled.create ~optimize:true nl in
    let t_opt =
      time_per_run ~min_time (fun () ->
          Compiled.reset scalar_opt;
          for _ = 1 to cycles do
            Compiled.step scalar_opt
          done)
    in
    (* optimized engine does less work per cycle; evals/sec still counts
       the *original* gates — it measures effective circuit throughput *)
    ignore (entry "compiled ~optimize" (per_run /. t_opt) base);
    let wide = Wide.create nl in
    let t_wide =
      time_per_run ~min_time (fun () ->
          Wide.reset wide;
          for _ = 1 to cycles do
            Wide.step wide
          done)
    in
    let wide_rate = per_run *. float_of_int Wide.lanes /. t_wide in
    ignore (entry ~lanes:Wide.lanes "compiled_wide (62 lanes)" wide_rate base);
    let wide_opt = Wide.create ~optimize:true nl in
    let t_wide_opt =
      time_per_run ~min_time (fun () ->
          Wide.reset wide_opt;
          for _ = 1 to cycles do
            Wide.step wide_opt
          done)
    in
    ignore
      (entry ~lanes:Wide.lanes "compiled_wide ~optimize"
         (per_run *. float_of_int Wide.lanes /. t_wide_opt)
         base);
    (* parallel_sim runs at the host's full recommended parallelism *)
    let rec_domains = Domain.recommended_domain_count () in
    let pool = Pool.create ~domains:rec_domains () in
    let psim = Parallel_sim.create ~pool nl in
    let t_par =
      time_per_run ~min_time (fun () ->
          Parallel_sim.reset psim;
          for _ = 1 to cycles do
            Parallel_sim.step psim
          done)
    in
    ignore
      (entry ~domains:rec_domains
         (Printf.sprintf "parallel_sim (%d domains)" rec_domains)
         (per_run /. t_par) base);
    (* batch-level parallelism on top of lane packing: the sharded
       engine's persistent per-domain replicas stepping raw cycles — no
       per-batch replica allocation and no per-cycle output
       materialization, so a 1-domain run matches the single wide
       instance instead of trailing it *)
    let module Sharded = Hydra_engine.Sharded in
    let sh = Sharded.create ~pool nl in
    let nbatches = 4 * Sharded.domains sh in
    let t_batched =
      time_per_run ~min_time (fun () ->
          ignore (Sharded.step_batches sh ~batches:nbatches ~cycles))
    in
    ignore
      (entry ~domains:(Sharded.domains sh) ~lanes:Wide.lanes
         (Printf.sprintf "wide x %d batches (sharded)" nbatches)
         (per_run
         *. float_of_int Wide.lanes
         *. float_of_int nbatches
         /. t_batched)
         base);
    Sharded.shutdown sh;
    Pool.shutdown pool;
    row "  wide vs scalar speedup: %.1fx (acceptance floor: 10x)\n"
      (wide_rate /. base)
  in
  bench_circuit "wallace64" (wallace_netlist 64) ~cycles:5;
  bench_circuit "cpu" (cpu_netlist ()) ~cycles:20

(* E21 ------------------------------------------------------------------ *)

(* The sharded engine's scaling curve: 62 lanes x N domains, batch-level
   sharding with persistent replicas (no per-cycle or per-level
   barriers).  Total work is held constant across domain counts, so the
   curve isolates scheduling cost/gain. *)
let e21 ?(min_time = 0.2) () =
  section "E21" "domain-sharded wide engine: scaling curve (62 lanes x domains)";
  let module Sharded = Hydra_engine.Sharded in
  let rec_domains = Domain.recommended_domain_count () in
  row "  host parallelism: %d core(s) (Domain.recommended_domain_count)%s\n"
    rec_domains
    (if rec_domains = 1 then
       " — extra domains can only add scheduling overhead on this host"
     else "");
  let domain_counts = [ 1; 2; 4; 8 ] in
  (* wallace64: raw stepping throughput over a fixed set of lane-batches *)
  let nl = wallace_netlist 64 in
  let st = N.stats nl in
  let cycles = 5 and batches = 8 in
  let per_run =
    float_of_int st.N.gates
    *. float_of_int cycles
    *. float_of_int Wide.lanes
    *. float_of_int batches
  in
  row "  wallace64: %d gates; %d batches x %d cycles x %d lanes per run\n"
    st.N.gates batches cycles Wide.lanes;
  (* like-for-like baseline: one engine running the same fresh-state
     batches inline (reset + [cycles] steps each), no scheduler *)
  let wide = Wide.create nl in
  let t_single =
    time_per_run ~min_time (fun () ->
        for _ = 1 to batches do
          Wide.reset wide;
          for _ = 1 to cycles do
            Wide.step wide
          done
        done)
  in
  let base_rate = per_run /. t_single in
  record ~section:"E21" ~name:"wallace64 wide single instance"
    ~value:base_rate ~unit_:"gate-evals/s" ~domains:1 ~lanes:Wide.lanes ();
  row "  %-34s %12.3g gate-evals/s  (1.00x)\n" "wide single instance" base_rate;
  List.iter
    (fun d ->
      let sh = Sharded.create ~domains:d nl in
      let t =
        time_per_run ~min_time (fun () ->
            ignore (Sharded.step_batches sh ~batches ~cycles))
      in
      Sharded.shutdown sh;
      let rate = per_run /. t in
      record ~section:"E21"
        ~name:(Printf.sprintf "wallace64 sharded %d domains" d)
        ~value:rate ~unit_:"gate-evals/s" ~domains:d ~lanes:Wide.lanes ();
      row "  %-34s %12.3g gate-evals/s  (%5.2fx)\n"
        (Printf.sprintf "sharded (%d domains)" d)
        rate (rate /. base_rate))
    domain_counts;
  (* the CPU system: many machine-language programs at once *)
  let module Asm = Hydra_cpu.Asm in
  let module Driver = Hydra_cpu.Driver in
  let program = Asm.assemble sum_loop_src in
  let n_addr = List.length program - 2 in
  let nprogs = 2 * Wide.lanes in
  let programs =
    Array.init nprogs (fun k ->
        List.mapi (fun i w -> if i = n_addr then 1 + (k mod 10) else w) program)
  in
  let sys_nl = Driver.system_netlist ~mem_bits:6 () in
  row "  cpu system: %d sum-loop programs, %d per wide pass\n" nprogs
    Wide.lanes;
  List.iter
    (fun d ->
      let sh = Sharded.create ~domains:d sys_nl in
      let results = ref [||] in
      let t =
        time_per_run ~min_time (fun () ->
            results := Driver.run_many ~sharded:sh ~max_cycles:1000 programs)
      in
      Sharded.shutdown sh;
      let all_halted =
        Array.for_all (fun r -> r.Driver.halted) !results
      in
      let rate = float_of_int nprogs /. t in
      record ~section:"E21"
        ~name:(Printf.sprintf "cpu run_many %d domains" d)
        ~value:rate ~unit_:"programs/s" ~domains:d ~lanes:Wide.lanes ();
      row "  %-34s %10.1f programs/s  (all halted: %b)\n"
        (Printf.sprintf "cpu run_many (%d domains)" d)
        rate all_halted)
    domain_counts

(* E23 ------------------------------------------------------------------ *)

(* Lane-parallel fault campaigns: `Campaign.run` grades up to 61 faults
   per wide pass through per-lane force masks (lane 0 golden), vs the
   historic loop that rewrites the netlist and recompiles an engine once
   per fault.  Both graders run the identical task — stuck-at faults
   against the same test vectors — so faults/s is directly comparable;
   the recompile baseline is timed on a small fault subset and scaled to
   per-fault cost (running it over all of wallace64's faults would take
   minutes). *)
let e23 ?(min_time = 0.2) () =
  section "E23" "fault campaigns: lane-parallel grading vs recompile loop";
  let module C = Hydra_verify.Campaign in
  let module Fault = Hydra_verify.Fault in
  let module Sharded = Hydra_engine.Sharded in
  let nl = wallace_netlist 64 in
  let st = N.stats nl in
  let faults = C.all_stuck_at nl in
  let nfaults = List.length faults in
  let nvectors = 8 in
  let vectors =
    Fault.random_vectors ~seed:11 ~inputs:(List.length nl.N.inputs) nvectors
  in
  let stimulus, cycles = C.stimulus_of_vectors nl vectors in
  row "  wallace64: %d components, %d stuck-at faults, %d test vectors\n"
    st.N.total nfaults nvectors;
  let sh = Sharded.create ~optimize:false ~relayout:false ~fuse:false nl in
  let report = ref None in
  let t_campaign =
    time_per_run ~min_time (fun () ->
        report := Some (C.run ~sharded:sh nl ~faults ~stimulus ~cycles))
  in
  let sh_domains = Sharded.domains sh in
  Sharded.shutdown sh;
  let r = Option.get !report in
  row "  campaign verdicts: %d detected, %d latent, %d masked (%.1f%% coverage)\n"
    r.C.detected r.C.latent r.C.masked
    (100.0 *. C.coverage_ratio r);
  let campaign_rate = float_of_int nfaults /. t_campaign in
  record ~section:"campaign" ~lanes:Wide.lanes ~domains:sh_domains
    ~name:"wallace64 stuck-at campaign" ~value:campaign_rate ~unit_:"faults/s"
    ();
  row "  %-36s %10.1f faults/s\n" "campaign (62-lane force masks)"
    campaign_rate;
  (* recompile baseline: inject (netlist rewrite) + fresh engine +
     response per fault — exactly `Fault.coverage_recompile`'s per-fault
     work — over an evenly spaced subset *)
  let nsub = 8 in
  let stride = max 1 (nfaults / nsub) in
  let subset =
    List.filteri (fun i _ -> i mod stride = 0 && i / stride < nsub) faults
  in
  let subset =
    List.map
      (function
        | C.Stuck_at { site; value } -> { Fault.site; stuck = value }
        | _ -> assert false)
      subset
  in
  let nsub = List.length subset in
  let t_baseline =
    time_per_run ~min_time (fun () ->
        List.iter
          (fun f ->
            let faulty = Fault.inject nl f in
            ignore (Fault.response faulty ~vectors ~cycles_per_vector:1))
          subset)
  in
  let baseline_rate = float_of_int nsub /. t_baseline in
  record ~section:"campaign" ~name:"wallace64 recompile-loop baseline"
    ~value:baseline_rate ~unit_:"faults/s" ();
  row "  %-36s %10.1f faults/s  (timed on %d faults, scaled)\n"
    "recompile loop (historic)" baseline_rate nsub;
  let speedup = campaign_rate /. baseline_rate in
  record ~section:"campaign" ~lanes:Wide.lanes
    ~name:"wallace64 campaign vs recompile speedup" ~value:speedup ~unit_:"x"
    ();
  row "  campaign vs recompile speedup: %.1fx (acceptance floor: 20x)\n"
    speedup;
  (* the CPU system: SEUs in a sample of datapath/memory state bits while
     the golden lane executes a machine-language program *)
  let module Asm = Hydra_cpu.Asm in
  let module Driver = Hydra_cpu.Driver in
  let sys_nl = Driver.system_netlist ~mem_bits:6 () in
  let program = Asm.assemble sum_loop_src in
  let stim, sys_cycles =
    Driver.program_stimulus ~mem_bits:6 ~max_cycles:400 program
  in
  let dffs = C.dff_sites sys_nl in
  let nsample = 2 * (Wide.lanes - 1) in
  let dstride = max 1 (List.length dffs / nsample) in
  let sampled =
    List.filteri (fun i _ -> i mod dstride = 0 && i / dstride < nsample) dffs
  in
  let at_cycle = List.length program + 10 in
  let seus =
    List.map (fun site -> C.Seu { site; at_cycle }) sampled
  in
  row "  cpu: %d of %d dffs upset at cycle %d over a %d-cycle sum-loop run\n"
    (List.length sampled) (List.length dffs) at_cycle sys_cycles;
  let cpu_report = ref None in
  let t_cpu =
    time_per_run ~min_time (fun () ->
        cpu_report :=
          Some (C.run sys_nl ~faults:seus ~stimulus:stim ~cycles:sys_cycles))
  in
  let cr = Option.get !cpu_report in
  let cpu_rate = float_of_int cr.C.total /. t_cpu in
  record ~section:"campaign" ~lanes:Wide.lanes ~name:"cpu seu sweep"
    ~value:cpu_rate ~unit_:"faults/s" ();
  row "  %-36s %10.1f faults/s  (%d detected, %d latent, %d masked)\n"
    "cpu seu campaign" cpu_rate cr.C.detected cr.C.latent cr.C.masked

(* E24 ------------------------------------------------------------------ *)

(* The slab engine: K consecutive 62-lane words per signal in one flat
   array, so one kernel pass simulates 62*K instances with the per-gate
   index loads amortized K ways.  Three measurements:

   - wallace64 throughput, slab K in {1,4,8,16} vs the wide engine, all
     rates in gate-evals/s at equal total lanes (a wide engine covering
     62*K lanes runs K passes at its 62-lane rate, so rates compare
     directly);
   - the gating overhead on wallace64 driven with fresh random inputs
     every cycle — the worst case for change detection, since every
     rank re-evaluates *and* pays the compare (acceptance: within 10%
     of the ungated slab);
   - the gating win on an idle-heavy workload — the section-6 CPU
     system sitting quiescent (start never asserted), where a settled
     gated engine reduces to a per-rank bool scan plus the dff latch
     loop (acceptance: >= 2x over the ungated slab). *)
let e24 ?(min_time = 0.2) () =
  section "E24" "slab engine: K-word slabs and activity gating vs wide";
  let module Slab = Hydra_engine.Slab in
  let nl = wallace_netlist 64 in
  let st = N.stats nl in
  let gates = float_of_int st.N.gates in
  let cycles = 5 in
  row "  wallace64: %d gates, %d dffs, critical path %d\n" st.N.gates
    st.N.dffs (L.critical_path nl);
  let per_lane_run = gates *. float_of_int cycles in
  let entry ?lanes name rate baseline =
    record ?lanes ~section:"E24" ~name ~value:rate ~unit_:"gate-evals/s" ();
    row "  %-38s %12.3g gate-evals/s  (%5.2fx)\n" name rate (rate /. baseline);
    rate
  in
  let wide = Wide.create nl in
  let t_wide =
    time_per_run ~min_time (fun () ->
        Wide.reset wide;
        for _ = 1 to cycles do
          Wide.step wide
        done)
  in
  let wide_rate = per_lane_run *. float_of_int Wide.lanes /. t_wide in
  ignore (entry ~lanes:Wide.lanes "wallace64 wide (62 lanes)" wide_rate wide_rate);
  List.iter
    (fun kk ->
      let slab = Slab.create ~k:kk nl in
      let t =
        time_per_run ~min_time (fun () ->
            Slab.reset slab;
            for _ = 1 to cycles do
              Slab.step slab
            done)
      in
      let lanes = Wide.lanes * kk in
      ignore
        (entry ~lanes
           (Printf.sprintf "wallace64 slab k=%d (%d lanes)" kk lanes)
           (per_lane_run *. float_of_int lanes /. t)
           wide_rate))
    [ 1; 4; 8; 16 ];
  (* gating worst case: every input word changes every cycle, so every
     rank stays dirty and the gated loops add one load + xor per word *)
  let k_g = 8 in
  let in_names = List.map fst nl.N.inputs in
  let rst = Random.State.make [| 0x24; k_g |] in
  let stim =
    Array.init cycles (fun _ ->
        List.map
          (fun name ->
            (name, Array.init k_g (fun _ -> Hydra_core.Packed.random_word rst)))
          in_names)
  in
  let drive slab () =
    Slab.reset slab;
    for c = 0 to cycles - 1 do
      List.iter
        (fun (name, ws) ->
          Array.iteri (fun w v -> Slab.set_input_word slab name w v) ws)
        stim.(c);
      Slab.step slab
    done
  in
  let slab_u = Slab.create ~k:k_g nl in
  let t_u = time_per_run ~min_time (drive slab_u) in
  let slab_g = Slab.create ~k:k_g ~gating:true nl in
  let t_g = time_per_run ~min_time (drive slab_g) in
  let lanes_g = Wide.lanes * k_g in
  let rate_u = per_lane_run *. float_of_int lanes_g /. t_u in
  let rate_g = per_lane_run *. float_of_int lanes_g /. t_g in
  ignore (entry ~lanes:lanes_g "wallace64 slab k=8 random stimulus" rate_u rate_u);
  ignore (entry ~lanes:lanes_g "wallace64 slab k=8 gated, random stimulus" rate_g rate_u);
  record ~section:"E24" ~lanes:lanes_g ~name:"wallace64 gating overhead"
    ~value:(t_g /. t_u) ~unit_:"x" ();
  row "  gating overhead on high-toggle wallace64: %.2fx time (floor: <= 1.10x)\n"
    (t_g /. t_u);
  (* gating win case: the CPU system holding its power-up state (start
     and dma never asserted) — nothing toggles, so a settled gated
     engine skips every rank *)
  let sys_nl = cpu_netlist () in
  let sys_st = N.stats sys_nl in
  let k_idle = 4 in
  let idle_cycles = 50 in
  let lanes_idle = Wide.lanes * k_idle in
  let per_idle_run =
    float_of_int sys_st.N.gates
    *. float_of_int idle_cycles
    *. float_of_int lanes_idle
  in
  row "  cpu idle: %d gates held quiescent for %d cycles per run\n"
    sys_st.N.gates idle_cycles;
  let idle_time gating =
    let slab = Slab.create ~k:k_idle ~gating sys_nl in
    (* settle into the quiescent fixed point before timing *)
    for _ = 1 to 4 do
      Slab.step slab
    done;
    time_per_run ~min_time (fun () ->
        for _ = 1 to idle_cycles do
          Slab.step slab
        done)
  in
  let t_idle_u = idle_time false in
  let t_idle_g = idle_time true in
  ignore
    (entry ~lanes:lanes_idle "cpu idle slab k=4" (per_idle_run /. t_idle_u)
       (per_idle_run /. t_idle_u));
  ignore
    (entry ~lanes:lanes_idle "cpu idle slab k=4 gated"
       (per_idle_run /. t_idle_g)
       (per_idle_run /. t_idle_u));
  record ~section:"E24" ~lanes:lanes_idle ~name:"cpu idle gating speedup"
    ~value:(t_idle_u /. t_idle_g) ~unit_:"x" ();
  row "  gating speedup on quiescent cpu: %.1fx (acceptance floor: 2x)\n"
    (t_idle_u /. t_idle_g)

(* E25 ------------------------------------------------------------------ *)

(* Rank-blocked kernels, cluster-granular gating and the C/simd backend.
   Four measurements:

   - wallace64 at k=16 (a slab too large for L2) swept over block sizes,
     against the unblocked one-block-per-rank baseline — the cache
     crossover the [Kernel.tuning] default sits on;
   - the cluster-gating overhead on high-toggle wallace64 at equal total
     lanes (acceptance: <= 1.05x time vs the ungated slab — block-scoped
     hot mode is cheaper than the old rank-scoped one);
   - the gating win on the quiescent CPU system, where a settled gated
     cycle reduces to two bitset scans (acceptance: > 4.5x over the
     ungated slab);
   - the simd backend vs the pure-OCaml kernels at the same geometry,
     stamped with the flavor this build probed (avx2/neon/scalar-c).

   [--tuning SPEC] adds a custom-geometry row to the sweep. *)
let cli_tuning : Hydra_engine.Kernel.tuning option ref = ref None

let e25 ?(min_time = 0.2) () =
  let module Slab = Hydra_engine.Slab in
  let module Kernel = Hydra_engine.Kernel in
  let module Simd = Hydra_engine.Simd in
  section "E25"
    "rank-blocked kernels: block-size sweep, cluster gating, simd backend";
  row "  simd backend this build: %s\n" (Simd.flavor ());
  record ~section:"E25" ~name:"simd backend (2=avx2, 1=neon, 0=scalar-c)"
    ~value:(float_of_int (match Simd.flavor () with
                          | "avx2" -> 2 | "neon" -> 1 | _ -> 0))
    ~unit_:"kind" ();
  let nl = wallace_netlist 64 in
  let st = N.stats nl in
  let gates = float_of_int st.N.gates in
  let cycles = 5 in
  let kk = 16 in
  let lanes = Wide.lanes * kk in
  row "  wallace64: %d gates at k=%d — %.1f MB of slab per settle\n"
    st.N.gates kk
    (float_of_int (N.size nl * kk * 8) /. 1e6);
  let sample ?tuning ?(simd = false) ?(k = kk) name =
    let slab = Slab.create ~k ?tuning ~simd nl in
    let t =
      time_per_run ~min_time (fun () ->
          Slab.reset slab;
          for _ = 1 to cycles do
            Slab.step slab
          done)
    in
    let lanes = Wide.lanes * k in
    let rate = gates *. float_of_int (cycles * lanes) /. t in
    record ~section:"E25" ~lanes ~name ~value:rate ~unit_:"gate-evals/s" ();
    (name, rate, t)
  in
  (* one block per rank = the pre-blocking layout *)
  let unblocked = { Kernel.default_tuning with Kernel.block_gates = max_int } in
  let _, base_rate, _ = sample ~tuning:unblocked "wallace64 k=16 unblocked" in
  row "  %-44s %12.3g gate-evals/s  (1.00x)\n" "unblocked (one block per rank)"
    base_rate;
  List.iter
    (fun bw ->
      let tuning = { Kernel.default_tuning with Kernel.block_words = bw } in
      let name = Printf.sprintf "wallace64 k=16 block-words=%d" bw in
      let _, rate, _ = sample ~tuning name in
      row "  %-44s %12.3g gate-evals/s  (%4.2fx)\n"
        (Printf.sprintf "block-words=%d (%d gates/block)" bw
           (Kernel.gates_per_block ~k:kk tuning))
        rate (rate /. base_rate))
    [ 768; 1536; 3072; 6144; 12288; 49152 ];
  (match !cli_tuning with
  | None -> ()
  | Some tuning ->
    let _, rate, _ =
      sample ~tuning
        (Printf.sprintf "wallace64 k=16 --tuning %s"
           (Kernel.tuning_to_spec tuning))
    in
    row "  %-44s %12.3g gate-evals/s  (%4.2fx)\n"
      ("--tuning " ^ Kernel.tuning_to_spec tuning)
      rate (rate /. base_rate));
  (* simd backend at the default geometry, k=16 and k=8 *)
  let _, ml16, _ = sample "wallace64 k=16 pure-OCaml" in
  let _, c16, _ = sample ~simd:true "wallace64 k=16 simd" in
  row "  %-44s %12.3g gate-evals/s  (%4.2fx vs OCaml)\n"
    (Printf.sprintf "simd k=16 (%s)" (Simd.flavor ())) c16 (c16 /. ml16);
  let _, ml8, _ = sample ~k:8 "wallace64 k=8 pure-OCaml" in
  let _, c8, _ = sample ~k:8 ~simd:true "wallace64 k=8 simd" in
  row "  %-44s %12.3g gate-evals/s  (%4.2fx vs OCaml)\n"
    (Printf.sprintf "simd k=8 (%s)" (Simd.flavor ())) c8 (c8 /. ml8);
  record ~section:"E25" ~lanes ~name:"simd speedup vs pure OCaml (k=16)"
    ~value:(c16 /. ml16) ~unit_:"x" ();
  (* cluster-gating overhead, high-toggle worst case at equal lanes *)
  let in_names = List.map fst nl.N.inputs in
  let rst = Random.State.make [| 0x25; kk |] in
  let stim =
    Array.init cycles (fun _ ->
        List.map
          (fun name ->
            (name, Array.init kk (fun _ -> Hydra_core.Packed.random_word rst)))
          in_names)
  in
  let drive slab () =
    Slab.reset slab;
    for c = 0 to cycles - 1 do
      List.iter
        (fun (name, ws) ->
          Array.iteri (fun w v -> Slab.set_input_word slab name w v) ws)
        stim.(c);
      Slab.step slab
    done
  in
  let t_u = time_per_run ~min_time (drive (Slab.create ~k:kk nl)) in
  let t_g =
    time_per_run ~min_time (drive (Slab.create ~k:kk ~gating:true nl))
  in
  record ~section:"E25" ~lanes ~name:"wallace64 cluster-gating overhead"
    ~value:(t_g /. t_u) ~unit_:"x" ();
  row "  cluster-gating overhead, high-toggle wallace64: %.3fx time \
       (acceptance: <= 1.05x)\n"
    (t_g /. t_u);
  (* idle win: the CPU system held quiescent — a settled gated cycle is
     two bitset scans *)
  let sys_nl = cpu_netlist () in
  let sys_st = N.stats sys_nl in
  let k_idle = 4 in
  let idle_cycles = 50 in
  let lanes_idle = Wide.lanes * k_idle in
  row "  cpu idle: %d gates held quiescent for %d cycles per run\n"
    sys_st.N.gates idle_cycles;
  let idle_time gating =
    let slab = Slab.create ~k:k_idle ~gating sys_nl in
    for _ = 1 to 4 do
      Slab.step slab
    done;
    time_per_run ~min_time (fun () ->
        for _ = 1 to idle_cycles do
          Slab.step slab
        done)
  in
  let t_idle_u = idle_time false in
  let t_idle_g = idle_time true in
  record ~section:"E25" ~lanes:lanes_idle
    ~name:"cpu idle cluster-gating speedup" ~value:(t_idle_u /. t_idle_g)
    ~unit_:"x" ();
  row "  cluster-gating speedup on quiescent cpu: %.1fx (acceptance: > 4.5x)\n"
    (t_idle_u /. t_idle_g)

(* E26: fixpoint dataflow analyses and the certified sweep they license.
   Two costs matter: the analysis itself (three worklist fixpoints plus
   partition refinement) must stay interactive on the big netlists, and
   the sweep must buy a real component reduction once translation
   validation is included in the bill. *)

let e26 () =
  let module Dataflow = Hydra_analyze.Dataflow in
  let module Sweep = Hydra_analyze.Sweep in
  let module Certify = Hydra_analyze.Certify in
  section "E26" "fixpoint dataflow analyses + certified sweep";
  List.iter
    (fun (name, nl) ->
      let n = N.size nl in
      let t0 = Unix.gettimeofday () in
      let df = Dataflow.create nl in
      let stats = Dataflow.stats df in
      let classes = Dataflow.classes df in
      let t_analyze = Unix.gettimeofday () -. t0 in
      let visits =
        List.fold_left (fun a (_, s) -> a + s.Dataflow.visits) 0 stats
      in
      row
        "  %-10s %6d comps: 3 fixpoints + classes in %.3f s (%d worklist \
         visits)\n"
        name n t_analyze visits;
      row "    stuck registers=%d  constants=%d  masked=%d  classes=%d\n"
        (List.length (Dataflow.stuck_registers df))
        (List.length (Dataflow.constant_components df))
        (List.length (Dataflow.masked df))
        (List.length classes);
      record ~section:"E26" ~name:(name ^ " analysis time") ~value:t_analyze
        ~unit_:"s" ();
      let t0 = Unix.gettimeofday () in
      let post, report, oc = Certify.sweep nl in
      let t_sweep = Unix.gettimeofday () -. t0 in
      if not (Certify.certified oc) then
        failwith ("E26: sweep refuted on " ^ name ^ ": " ^ Certify.describe oc);
      row "    certified sweep: %s in %.3f s (%.1f%% smaller)\n"
        (Sweep.describe report) t_sweep
        (100.
        *. float_of_int (report.Sweep.before - report.Sweep.after)
        /. float_of_int report.Sweep.before);
      record ~section:"E26" ~name:(name ^ " sweep+certify time")
        ~value:t_sweep ~unit_:"s" ();
      record ~section:"E26" ~name:(name ^ " sweep component reduction")
        ~value:(float_of_int (report.Sweep.before - report.Sweep.after))
        ~unit_:"components" ();
      ignore post)
    [ ("wallace64", wallace_netlist 64); ("cpu", cpu_netlist ()) ]

(* E27: the unified scheduler, the compiled-circuit cache and
   incremental recompilation.  Three measurements:

   - a catalogue re-run (14 circuits x 3 engine flavors) cold vs warm —
     a warm {!Cache} hit must skip compilation entirely (acceptance:
     >= 10x end-to-end);
   - patch-vs-full recompile on a single-gate edit of wallace64, with
     the recompiled-component fraction (acceptance: < 10%);
   - a mixed fault-campaign + equivalence workload on one shared
     scheduler team + cache vs each tool owning its engines, asserting
     bit-identical results.

   Every row here is stamped with [wall_s] and [warmup] (the bench
   hygiene convention for new rows). *)
let e27 ?(min_time = 0.2) () =
  let module Cache = Hydra_engine.Cache in
  let module Scheduler = Hydra_engine.Scheduler in
  let module Kernel = Hydra_engine.Kernel in
  section "E27"
    "unified scheduler + compiled-circuit cache + incremental recompilation";
  (* catalogue: 14 circuits x 3 flavors (program, wide replica, slab k=4) *)
  let catalogue =
    [
      ("ripple8", ripple_netlist 8);
      ("ripple32", ripple_netlist 32);
      ("ripple64", ripple_netlist 64);
      ("cla16 sklansky", cla_netlist ~network:P.Sklansky 16);
      ("cla32 brent-kung", cla_netlist ~network:P.Brent_kung 32);
      ("cla32 kogge-stone", cla_netlist ~network:P.Kogge_stone 32);
      ("cla64 kogge-stone", cla_netlist ~network:P.Kogge_stone 64);
      ("wallace8", wallace_netlist 8);
      ("wallace16", wallace_netlist 16);
      ("wallace24", wallace_netlist 24);
      ("wallace32", wallace_netlist 32);
      ("wide-adder 8x16", wide_adder_netlist ~copies:8 ~width:16);
      ("wide-adder 16x8", wide_adder_netlist ~copies:16 ~width:8);
      ("cpu", cpu_netlist ());
    ]
  in
  row "  catalogue: %d circuits x 3 engine flavors\n" (List.length catalogue);
  let cache = Cache.create () in
  let touch () =
    List.iter
      (fun (_, nl) ->
        ignore (Cache.compile cache nl);
        ignore (Cache.wide cache nl);
        ignore (Cache.slab cache ~k:4 nl))
      catalogue
  in
  let t0 = Unix.gettimeofday () in
  touch ();
  let t_cold = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  touch ();
  let t_warm = Unix.gettimeofday () -. t0 in
  let cst = Cache.stats cache in
  row "  cold catalogue: %.3f s   warm re-run: %.4f s   speedup %.0fx \
       (acceptance floor: 10x)\n"
    t_cold t_warm (t_cold /. t_warm);
  row "  cache counters: %d hits, %d misses, %d evictions, %d entries\n"
    cst.Cache.hits cst.Cache.misses cst.Cache.evictions cst.Cache.entries;
  record ~section:"E27" ~name:"catalogue cold compile" ~value:t_cold
    ~unit_:"s" ~wall_s:t_cold ~warmup:0 ();
  record ~section:"E27" ~name:"catalogue warm re-run" ~value:t_warm ~unit_:"s"
    ~wall_s:t_warm ~warmup:1 ();
  record ~section:"E27" ~name:"catalogue warm-cache speedup"
    ~value:(t_cold /. t_warm) ~unit_:"x" ~wall_s:(t_cold +. t_warm) ~warmup:1
    ();
  if t_cold < 10.0 *. t_warm then
    row "  WARNING: warm-cache speedup is below the 10x acceptance floor\n";
  (* patch vs full recompile on a single-gate edit of wallace64; the
     edit is expressed in the program's own (post-relayout) index space,
     so the full-recompile comparison also skips relayout *)
  let nl64 = wallace_netlist 64 in
  let prog = Kernel.compile nl64 in
  let pnl = prog.Kernel.netlist in
  let ands = ref [] in
  Array.iteri
    (fun i c -> if c = N.And2c then ands := i :: !ands)
    pnl.N.components;
  let ands = Array.of_list (List.rev !ands) in
  let site = ands.(Array.length ands / 2) in
  let components = Array.copy pnl.N.components in
  components.(site) <- N.Or2c;
  let nl' = { pnl with N.components } in
  let t0 = Unix.gettimeofday () in
  let t_full =
    time_per_run ~min_time (fun () ->
        ignore (Kernel.compile ~relayout:false nl'))
  in
  let t_patch =
    time_per_run ~min_time (fun () ->
        ignore (Kernel.patch prog nl' ~edited:[ site ]))
  in
  let wall_patch = Unix.gettimeofday () -. t0 in
  let _, pst = Kernel.patch prog nl' ~edited:[ site ] in
  let frac =
    float_of_int pst.Kernel.p_comps_recompiled
    /. float_of_int pst.Kernel.p_comps_total
  in
  row "  wallace64 single-gate edit: full recompile %.4f s, patch %.5f s \
       (%.0fx)\n"
    t_full t_patch (t_full /. t_patch);
  row "  patch recompiled %d of %d components (%.1f%%; acceptance: < 10%%), \
       %d of %d ranks\n"
    pst.Kernel.p_comps_recompiled pst.Kernel.p_comps_total (100. *. frac)
    pst.Kernel.p_ranks_rebuilt pst.Kernel.p_ranks_total;
  record ~section:"E27" ~name:"wallace64 full recompile" ~value:t_full
    ~unit_:"s" ~wall_s:wall_patch ~warmup:1 ();
  record ~section:"E27" ~name:"wallace64 single-gate patch" ~value:t_patch
    ~unit_:"s" ~wall_s:wall_patch ~warmup:1 ();
  record ~section:"E27" ~name:"wallace64 patch speedup vs full"
    ~value:(t_full /. t_patch) ~unit_:"x" ~wall_s:wall_patch ~warmup:1 ();
  record ~section:"E27" ~name:"wallace64 patch recompiled fraction"
    ~value:frac ~unit_:"fraction" ~wall_s:wall_patch ~warmup:1 ();
  (* mixed fault + equivalence workload: each tool owning its engines vs
     both draining one scheduler team through one cache *)
  let module C = Hydra_verify.Campaign in
  let nl16 = wallace_netlist 16 in
  let faults = C.all_stuck_at nl16 in
  let stimulus = C.random_stimulus ~seed:9 ~cycles:4 nl16 in
  let opt16 = Hydra_netlist.Optimize.optimize nl16 in
  let t0 = Unix.gettimeofday () in
  let rep_seq = C.run nl16 ~faults ~stimulus ~cycles:4 in
  let eq_seq = Equiv.wide_random_netlists ~passes:4 ~cycles:8 nl16 opt16 in
  let t_seq = Unix.gettimeofday () -. t0 in
  let sch = Scheduler.create ~domains:2 () in
  let t0 = Unix.gettimeofday () in
  let rep_sch =
    C.run ~scheduler:sch ~cache nl16 ~faults ~stimulus ~cycles:4
  in
  let eq_sch =
    Equiv.wide_random_netlists ~scheduler:sch ~cache ~passes:4 ~cycles:8 nl16
      opt16
  in
  let t_sch = Unix.gettimeofday () -. t0 in
  Scheduler.shutdown sch;
  if rep_seq <> rep_sch then failwith "E27: campaign diverges under scheduler";
  if eq_seq <> eq_sch then failwith "E27: equiv diverges under scheduler";
  let nwork = float_of_int (List.length faults + 4) in
  row "  mixed fault+equiv (%d faults + 4 equiv passes), bit-identical: \
       dedicated %.3f s vs one shared team %.3f s\n"
    (List.length faults) t_seq t_sch;
  record ~section:"E27" ~name:"mixed fault+equiv dedicated engines"
    ~value:(nwork /. t_seq) ~unit_:"jobs/s" ~wall_s:t_seq ~warmup:0 ();
  record ~section:"E27" ~domains:2 ~lanes:Wide.lanes
    ~name:"mixed fault+equiv one shared team" ~value:(nwork /. t_sch)
    ~unit_:"jobs/s" ~wall_s:t_sch ~warmup:0 ()

(* E28: resilience — throughput under chaos storms.  The acceptance
   experiment for the resilience layer: a wallace64 all-stuck-at slab
   campaign on a shared scheduler team, fault-free vs under a seeded
   chaos storm (~10% of chunk executions stall, 5% raise transient
   exceptions), with a retry policy recovering, an admission controller
   degrading the slab request, and a hard deadline at 2x the fault-free
   wall time.  Acceptance: the stormy campaign completes inside the
   deadline by shedding/degrading — with bit-identical verdicts.  The
   gate is real: a deadline expiry or verdict divergence fails the
   bench run, and the faults/s rows are pinned by [--baseline]. *)
let e28 () =
  let module C = Hydra_verify.Campaign in
  let module Chaos = Hydra_verify.Chaos in
  let module R = Hydra_engine.Resilience in
  let module Scheduler = Hydra_engine.Scheduler in
  section "E28" "resilience: campaign throughput under chaos storms";
  let nl = wallace_netlist 64 in
  let faults = C.all_stuck_at nl in
  let nf = List.length faults in
  let cycles = 6 in
  let stimulus = C.random_stimulus ~seed:11 ~cycles nl in
  let k = 4 in
  let chunks = Scheduler.chunking ~reserved:1 ~lanes:(62 * k) nf in
  row "  wallace64: %d stuck-at faults, slab k=%d, %d chunks, 2 domains\n" nf
    k chunks.Scheduler.count;
  let sch = Scheduler.create ~domains:2 () in
  (* fault-free reference on the same team *)
  let t0 = Unix.gettimeofday () in
  let clean =
    C.run ~scheduler:sch ~engine:(`Slab k) nl ~faults ~stimulus ~cycles
  in
  let t_clean = Unix.gettimeofday () -. t0 in
  let clean_rate = float_of_int nf /. t_clean in
  row "  %-40s %8.3f s  %10.1f faults/s\n" "fault-free" t_clean clean_rate;
  record ~section:"E28" ~domains:2 ~lanes:(62 * k)
    ~name:"wallace64 slab campaign fault-free" ~value:clean_rate
    ~unit_:"faults/s" ~wall_s:t_clean ~warmup:0 ();
  (* the storm: each chunk execution stalls with p=0.10 (up to roughly
     one chunk's worth of work) or raises with p=0.05; retries recover
     the raises, the admission budget degrades the slab request to
     k=2, and the whole campaign must still land inside 2x fault-free *)
  let stall = t_clean /. float_of_int (max 1 chunks.Scheduler.count) in
  let plan =
    Chaos.plan ~seed:0xe28 ~delay_rate:0.10 ~exn_rate:0.05 ~max_delay:stall ()
  in
  let retry = R.retry ~max_attempts:6 ~base_delay:0.001 ~max_delay:0.01 () in
  let admission = R.admission ~max_lanes:(62 * k / 2) () in
  let deadline = 2.0 *. t_clean in
  let t0 = Unix.gettimeofday () in
  let stormy =
    match
      C.run ~scheduler:sch ~engine:(`Slab k) ~deadline ~retry ~admission
        ~chaos:plan nl ~faults ~stimulus ~cycles
    with
    | r -> r
    | exception R.Deadline_exceeded { elapsed; _ } ->
      failwith
        (Printf.sprintf
           "E28: stormy campaign blew the 2x deadline (%.3f s vs %.3f s \
            fault-free)"
           elapsed t_clean)
  in
  let t_storm = Unix.gettimeofday () -. t0 in
  Scheduler.shutdown sch;
  if clean.C.verdicts <> stormy.C.verdicts then
    failwith "E28: verdicts diverged under the chaos storm";
  let c = Chaos.injected plan in
  let storm_rate = float_of_int nf /. t_storm in
  let ratio = t_storm /. t_clean in
  row "  %-40s %8.3f s  %10.1f faults/s\n"
    (Printf.sprintf "chaos storm (%d stalls, %d raises)" c.Chaos.delays
       c.Chaos.exns)
    t_storm storm_rate;
  let ast = R.admission_stats admission in
  row "  verdicts bit-identical; slab degraded %d time(s); wall ratio \
       %.2fx (acceptance: <= 2x, enforced by the deadline)\n"
    ast.R.degraded ratio;
  record ~section:"E28" ~domains:2 ~lanes:(62 * k / 2)
    ~name:"wallace64 slab campaign under chaos" ~value:storm_rate
    ~unit_:"faults/s" ~wall_s:t_storm ~warmup:0 ();
  record ~section:"E28" ~name:"chaos wall ratio vs fault-free" ~value:ratio
    ~unit_:"x" ~wall_s:(t_clean +. t_storm) ~warmup:0 ();
  record ~section:"E28"
    ~name:"chaos injections survived"
    ~value:(float_of_int (c.Chaos.delays + c.Chaos.exns))
    ~unit_:"injections" ~wall_s:t_storm ~warmup:0 ()

(* Smoke mode ----------------------------------------------------------- *)

(* A ~2 s subset run from `dune runtest` (alias bench-smoke): asserts the
   wide engine agrees with the scalar one on a real circuit, then takes a
   single quick throughput sample so gross engine regressions surface in
   tier-1. *)
let smoke () =
  print_endline "bench smoke: wide-engine agreement + quick throughput";
  let nl = wallace_netlist 16 in
  (* correctness: 62 random multiplications per pass, wide vs scalar *)
  (match Equiv.wide_random_netlists ~passes:2 ~cycles:4 nl nl with
  | Equiv.Seq_equivalent -> ()
  | Equiv.Seq_mismatch _ -> failwith "smoke: self-equivalence failed");
  (match Equiv.wide_random_netlists ~passes:2 ~cycles:4 nl
           (Hydra_netlist.Optimize.optimize nl)
   with
  | Equiv.Seq_equivalent -> print_endline "  optimize-equivalence: ok"
  | Equiv.Seq_mismatch { output; cycle; _ } ->
    failwith
      (Printf.sprintf "smoke: optimized netlist diverges at %s, cycle %d"
         output cycle));
  let scalar = Compiled.create nl and wide = Wide.create nl in
  let st = Random.State.make [| 0xbeef |] in
  let input_names = List.map fst nl.N.inputs in
  for _cycle = 1 to 16 do
    let packed_inputs =
      List.map (fun name -> (name, Hydra_core.Packed.random_word st)) input_names
    in
    List.iter (fun (n, w) -> Wide.set_input wide n w) packed_inputs;
    (* lane 7 of the wide run vs a scalar run *)
    List.iter
      (fun (n, w) -> Compiled.set_input scalar n (Hydra_core.Packed.lane w 7))
      packed_inputs;
    Wide.settle wide;
    Compiled.settle scalar;
    List.iter
      (fun (name, _) ->
        if Wide.output_lane wide name 7 <> Compiled.output scalar name then
          failwith ("smoke: lane mismatch on " ^ name))
      nl.N.outputs;
    Wide.tick wide;
    Compiled.tick scalar
  done;
  print_endline "  scalar/wide lane agreement: ok";
  (* sharded engine: batches over 2 domains must equal sequential
     run_packed of the same batches on one wide engine *)
  let module Sharded = Hydra_engine.Sharded in
  let batch k =
    let st = Random.State.make [| 0xca5e; k |] in
    List.map
      (fun name ->
        (name, List.init 4 (fun _ -> Hydra_core.Packed.random_word st)))
      input_names
  in
  let batches = Array.init 5 batch in
  let sh = Sharded.create ~domains:2 nl in
  let got = Sharded.run_batches sh ~batches ~cycles:4 in
  Sharded.shutdown sh;
  let reference = Wide.create nl in
  Array.iteri
    (fun b inputs ->
      if got.(b) <> Wide.run_packed reference ~inputs ~cycles:4 then
        failwith (Printf.sprintf "smoke: sharded batch %d diverges" b))
    batches;
  print_endline "  sharded/wide batch agreement: ok";
  (* slab engine: every k=4 flavor — plain, cluster-gated, simd, tiny
     rank blocks — must match the wide engine on every word of every
     output *)
  let module Slab = Hydra_engine.Slab in
  let module Kernel = Hydra_engine.Kernel in
  let tiny = { Kernel.default_tuning with Kernel.block_gates = 4 } in
  List.iter
    (fun (label, gating, simd, tuning) ->
      match Equiv.slab_vs_wide ~passes:1 ~cycles:4 ~k:4 ~gating ~simd ?tuning nl with
      | Equiv.Seq_equivalent -> ()
      | Equiv.Seq_mismatch { output; cycle; _ } ->
        failwith
          (Printf.sprintf "smoke: slab (%s) diverges from wide at %s, cycle %d"
             label output cycle))
    [
      ("plain", false, false, None);
      ("gated", true, false, None);
      ("simd", false, true, None);
      ("gated simd tiny-blocks", true, true, Some tiny);
    ];
  Printf.printf
    "  slab/wide agreement (k=4: plain, gated, simd [%s], tiny blocks): ok\n"
    (Hydra_engine.Simd.flavor ());
  record ~section:"smoke" ~name:"simd backend (2=avx2, 1=neon, 0=scalar-c)"
    ~value:
      (float_of_int
         (match Hydra_engine.Simd.flavor () with
         | "avx2" -> 2
         | "neon" -> 1
         | _ -> 0))
    ~unit_:"kind" ();
  let cycles = 5 in
  let t_scalar =
    time_per_run ~min_time:0.05 (fun () ->
        Compiled.reset scalar;
        for _ = 1 to cycles do
          Compiled.step scalar
        done)
  in
  let t_wide =
    time_per_run ~min_time:0.05 (fun () ->
        Wide.reset wide;
        for _ = 1 to cycles do
          Wide.step wide
        done)
  in
  Printf.printf "  throughput sample: wide/scalar = %.1fx per gate-eval\n"
    (t_scalar /. t_wide *. float_of_int Wide.lanes);
  record ~section:"smoke" ~name:"wide/scalar speedup per gate-eval"
    ~value:(t_scalar /. t_wide *. float_of_int Wide.lanes)
    ~unit_:"x" ~lanes:Wide.lanes ();
  let slab = Slab.create ~k:4 nl in
  let t_slab =
    time_per_run ~min_time:0.05 (fun () ->
        Slab.reset slab;
        for _ = 1 to cycles do
          Slab.step slab
        done)
  in
  Printf.printf "  throughput sample: slab k=4 / wide = %.2fx per gate-eval\n"
    (t_wide /. t_slab *. 4.0);
  record ~section:"smoke" ~name:"slab/wide speedup per gate-eval (k=4)"
    ~value:(t_wide /. t_slab *. 4.0)
    ~unit_:"x" ~lanes:(4 * Wide.lanes) ();
  (* fault campaign sanity: a whole stuck-at campaign on an 8-bit wallace
     multiplier must classify every fault and detect most of them *)
  let module C = Hydra_verify.Campaign in
  let nl8 = wallace_netlist 8 in
  let faults = C.all_stuck_at nl8 in
  let stimulus = C.random_stimulus ~seed:3 ~cycles:6 nl8 in
  let t0 = Unix.gettimeofday () in
  let rep = C.run nl8 ~faults ~stimulus ~cycles:6 in
  let t_camp = Unix.gettimeofday () -. t0 in
  if rep.C.total <> rep.C.detected + rep.C.latent + rep.C.masked then
    failwith "smoke: campaign verdicts do not partition the fault list";
  if rep.C.detected = 0 then
    failwith "smoke: campaign detected no stuck-at faults";
  Printf.printf "  fault campaign: %d/%d stuck-at faults detected: ok\n"
    rep.C.detected rep.C.total;
  record ~section:"smoke" ~name:"campaign stuck-at faults/s (wallace8)"
    ~value:(float_of_int rep.C.total /. t_camp)
    ~unit_:"faults/s" ~lanes:Wide.lanes ();
  record ~section:"smoke" ~name:"host recommended domains"
    ~value:(float_of_int (Domain.recommended_domain_count ()))
    ~unit_:"domains" ();
  print_endline "bench smoke: PASS"

(* Driver --------------------------------------------------------------- *)

let sections : (string * (unit -> unit)) list =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19); ("E20", (fun () -> e20 ()));
    ("E21", (fun () -> e21 ())); ("E23", (fun () -> e23 ()));
    ("E24", (fun () -> e24 ()));
    ("E25", (fun () -> e25 ()));
    ("E26", e26);
    ("E27", (fun () -> e27 ()));
    ("E28", e28);
  ]

(* Baseline comparison: re-read a previous [--json] file (our own
   format, one row per line) and fail on a >10% regression of any
   pinned throughput row — sections E20/E24/E28, unit ending in "/s" —
   that this run also produced with the same domain count. *)
let scan_baseline path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "error: cannot read baseline %s (%s)\n" path msg;
      exit 2
  in
  let field line key =
    (* values we wrote: "key": "string" or "key": number *)
    let pat = Printf.sprintf "\"%s\": " key in
    let plen = String.length pat in
    let rec find i =
      if i + plen > String.length line then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
      let stop = ref start in
      let quoted = line.[start] = '"' in
      let start = if quoted then start + 1 else start in
      stop := start;
      while
        !stop < String.length line
        &&
        if quoted then line.[!stop] <> '"'
        else not (List.mem line.[!stop] [ ','; '}'; ' ' ])
      do
        incr stop
      done;
      Some (String.sub line start (!stop - start))
  in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         (field line "section", field line "name", field line "value",
          field line "unit")
       with
       | Some sec, Some name, Some v, Some unit_ ->
         rows :=
           (sec, name, unit_, float_of_string v,
            Option.map int_of_string (field line "domains"))
           :: !rows
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  !rows

let pinned_row (sec, _, _, unit_, _, _, _, _, _) =
  (sec = "E20" || sec = "E24" || sec = "E28")
  && String.length unit_ >= 2
  && String.sub unit_ (String.length unit_ - 2) 2 = "/s"

let compare_baseline path =
  let base = scan_baseline path in
  let compared = ref 0 and regressions = ref [] in
  List.iter
    (fun ((sec, name, value, _, domains, _, _, _, _) as r) ->
      if pinned_row r then
        match
          List.find_opt
            (fun (bsec, bname, _, _, bdomains) ->
              bsec = sec && bname = name && bdomains = domains)
            base
        with
        | None -> ()
        | Some (_, _, _, bvalue, _) ->
          incr compared;
          if value < 0.9 *. bvalue then
            regressions :=
              Printf.sprintf "  %s: %-40s %.3g -> %.3g (%.1f%% down)" sec
                name bvalue value
                (100. *. (1. -. (value /. bvalue)))
              :: !regressions)
    (List.rev !results);
  Printf.printf "\nbaseline %s: %d pinned E20/E24/E28 row(s) compared\n" path
    !compared;
  if !compared = 0 then
    print_endline
      "  warning: no comparable rows (run E20/E24/E28 in both runs on the \
       same host)";
  match !regressions with
  | [] -> print_endline "  no >10% regression"
  | rs ->
    print_endline "  REGRESSION (>10% below baseline):";
    List.iter print_endline (List.rev rs);
    exit 1

let usage () =
  print_endline
    "usage: main.exe [--smoke] [--json PATH] [--baseline PATH] \
     [--only E12,E20] [--list] [--tuning SPEC]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = ref None and only = ref None and smoke_mode = ref false in
  let baseline = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke_mode := true;
      parse rest
    | "--json" :: path :: rest ->
      json := Some path;
      parse rest
    | "--baseline" :: path :: rest ->
      baseline := Some path;
      parse rest
    | "--only" :: names :: rest ->
      only := Some (String.split_on_char ',' names);
      parse rest
    | "--tuning" :: spec :: rest ->
      (try cli_tuning := Some (Hydra_engine.Kernel.tuning_of_spec spec)
       with Invalid_argument msg ->
         prerr_endline msg;
         usage ());
      parse rest
    | "--list" :: _ ->
      List.iter (fun (id, _) -> print_endline id) sections;
      exit 0
    | _ -> usage ()
  in
  parse args;
  if !smoke_mode then smoke ()
  else begin
    let chosen =
      match !only with
      | None -> sections
      | Some ids ->
        List.iter
          (fun id ->
            if not (List.mem_assoc id sections) then begin
              Printf.eprintf "unknown section %s\n" id;
              usage ()
            end)
          ids;
        List.filter (fun (id, _) -> List.mem id ids) sections
    in
    let t0 = Unix.gettimeofday () in
    print_endline
      "Hydra reproduction benchmarks (see DESIGN.md experiment index)";
    List.iter (fun (_, f) -> f ()) chosen;
    Printf.printf "\nAll sections completed in %.1f s\n"
      (Unix.gettimeofday () -. t0)
  end;
  (match !json with None -> () | Some path -> write_json path);
  match !baseline with None -> () | Some path -> compare_baseline path
